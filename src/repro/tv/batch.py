"""Struct-of-arrays batched execution for compiled TV plans (ROADMAP 3).

The refinement checker enumerates the same function over
``max_inputs x max_nondet_runs`` runs, and after PR 5's compile-once
plans every one of those runs replays the same closure sequence — the
remaining waste is re-walking the plan once per enumerated input.  This
module executes one *batch* of lanes (one lane per pending input) per
plan walk:

* frames are struct-of-arrays — ``frame[slot]`` is a per-lane column,
  so each batched step resolves its static operands once and then
  applies the op across all live lanes in a tight loop;
* per-lane masks short-circuit UB/poison/timeout: a lane that traps is
  dropped from the active list without disturbing its neighbors, and
  its UB detail string is recorded exactly as the scalar path would;
* divergence at branches regroups lanes by successor edge — sub-batches
  proceed independently off a worklist, sharing the frame columns
  (their lane indices are disjoint by construction);
* everything per-lane-stateful (memory, oracle choices, external-call
  sequence numbers, nested calls) runs against that lane's own scalar
  :class:`~repro.tv.interp.Interpreter`, and nested defined calls fall
  back to the scalar ``_call`` path wholesale — so observable semantics
  (poison/undef propagation, oracle choice order and domain sizes, UB
  classification, step accounting) are identical by construction.  The
  differential suite in ``tests/test_batch_exec.py`` locks lane-by-lane
  bit-equality against the scalar path.

Batch programs are compiled lazily from the scalar
:class:`~repro.tv.compile.ExecutionPlan` (and cached on it, so the
global plan cache shares them across mutants).  Anything the batch
compiler declines — deferred size errors whose ``ValueError`` must
abort the whole check in scalar input order — falls back to the scalar
enumeration, counted in ``exec.batch.scalar_fallbacks``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryOperator,
    BrInst,
    CallInst,
    CastInst,
    FreezeInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.types import IntType
from ..ir.values import (
    ConstantInt,
    ConstantPointerNull,
    PoisonValue,
    UndefValue,
    Value,
)
from .compile import (
    _ICMP_COMPARATORS,
    _SIGNED_ICMP,
    _UNDEF_BYTE_CHOICES,
    _UNSET,
    ExecutionPlan,
    _binary_fn,
    _constant_pointer_address,
    _safe_size,
)
from .domain import NULL_POINTER, POISON, Pointer, to_signed, to_unsigned
from .interp import (
    ExecutionLimits,
    Interpreter,
    StepLimitExceeded,
    UBError,
    evaluate_intrinsic,
    pointer_address,
)
from .memory import UNDEF_BYTE, MemoryFault, bytes_to_int, int_to_bytes

__all__ = [
    "BatchProgram",
    "BatchRunner",
    "BatchStats",
    "batch_program_for",
    "compile_batch_program",
    "global_batch_stats",
    "reset_global_batch_stats",
]

# Control value returned by ret steps: the group is done, per-lane
# results are already recorded on the context.
_RETURNED = object()

# Cached on ExecutionPlan.batch_program when batch compilation declined.
_BATCH_FAILED = object()

# A batched operand is one of three shapes, discriminated at compile
# time so hot steps can specialize their lane loops:
#   ("const", value)          -- compile-time constant runtime value
#   ("slot", index, reason)   -- frame column + use-of-unevaluated detail
#   ("dyn", resolve)          -- per-lane callable (ctx, frame, lane) -> value
_CONST = "const"
_SLOT = "slot"
_DYN = "dyn"

LaneResolver = Callable[["_BatchContext", List[List[Any]], int], Any]
BatchStep = Callable[["_BatchContext", List[List[Any]], List[int]], Any]


class BatchUnsupported(Exception):
    """The batch compiler declines this function (scalar fallback)."""


class BatchStats:
    """Process-wide batched-execution counters (``exec.batch.*``)."""

    __slots__ = ("batches", "lanes", "divergence_splits", "scalar_fallbacks")

    def __init__(self) -> None:
        self.batches = 0
        self.lanes = 0
        self.divergence_splits = 0
        self.scalar_fallbacks = 0

    def stats(self) -> Tuple[int, int, int, int]:
        return (
            self.batches,
            self.lanes,
            self.divergence_splits,
            self.scalar_fallbacks,
        )


_GLOBAL_BATCH_STATS = BatchStats()


def global_batch_stats() -> BatchStats:
    return _GLOBAL_BATCH_STATS


def reset_global_batch_stats() -> BatchStats:
    global _GLOBAL_BATCH_STATS
    _GLOBAL_BATCH_STATS = BatchStats()
    return _GLOBAL_BATCH_STATS


class _BatchContext:
    """Per-batch mutable state: lane masks, step counts, results.

    ``running`` is the live mask; ``dead`` flags that some lane dropped
    out since the executor last filtered its active list, so filtering
    happens once per step instead of once per trap.

    ``pending`` carries lazy step accounting: inside a bulk-accounted
    block (see :class:`_BBlock`) it holds the steps executed so far in
    that block, charged to a lane only when the lane leaves — keeping
    per-lane counters exact (they are part of the differential-tested
    contract) without a per-step per-lane increment loop.  Outside bulk
    blocks it is zero and counters are maintained eagerly.
    """

    __slots__ = (
        "size",
        "max_steps",
        "steps",
        "interps",
        "running",
        "statuses",
        "values",
        "details",
        "frame",
        "dead",
        "divergence_splits",
        "pending",
    )

    def __init__(self, size: int, max_steps: int) -> None:
        self.size = size
        self.max_steps = max_steps
        self.steps = [0] * size
        self.interps: List[Interpreter] = []
        self.running = [True] * size
        self.statuses: List[Optional[str]] = [None] * size
        self.values: List[Any] = [None] * size
        self.details = [""] * size
        self.frame: List[List[Any]] = []
        self.dead = False
        self.divergence_splits = 0
        self.pending = 0

    def trap(self, lane: int, reason: str) -> None:
        # First trap wins: column-wise phi copies may revisit a lane that
        # already dropped out, and the scalar path reports the first UB.
        if not self.running[lane]:
            return
        self.steps[lane] += self.pending
        self.statuses[lane] = "ub"
        self.details[lane] = reason
        self.running[lane] = False
        self.dead = True

    def timeout(self, lane: int) -> None:
        # Only reached with eager accounting (bulk blocks guarantee
        # budget headroom up front), so ``pending`` is always zero here.
        self.statuses[lane] = "timeout"
        self.running[lane] = False
        self.dead = True

    def finish(self, lane: int, value: Any) -> None:
        self.steps[lane] += self.pending
        self.statuses[lane] = "ok"
        self.values[lane] = value
        self.running[lane] = False

    def trap_exception(self, lane: int, exc: BaseException) -> None:
        """Record one lane's exception exactly as ``Interpreter.run``
        classifies it: MemoryFault and arithmetic/recursion errors are
        UB with ``str(exc)`` detail, step/depth exhaustion is timeout."""
        if isinstance(exc, UBError):
            self.trap(lane, exc.reason)
        elif isinstance(exc, StepLimitExceeded):
            self.timeout(lane)
        else:
            self.trap(lane, str(exc))


# Exceptions a lane may raise without poisoning its batch.  ValueError
# is deliberately absent: scalar execution lets it abort the whole
# check, so batch compilation refuses deferred-size errors up front.
_LANE_ERRORS = (
    UBError,
    MemoryFault,
    StepLimitExceeded,
    ZeroDivisionError,
    RecursionError,
)


class _BBlock:
    """A compiled block: batched steps plus accounting metadata.

    ``call_free`` blocks whose lanes all have ``step_count`` of budget
    headroom skip per-step accounting — the executor bulk-charges the
    steps a lane actually executed when it leaves the block (trapped
    and returned lanes never consume their counts again, and call steps
    are the only ones that need an exact mid-block counter to sync into
    the nested scalar call)."""

    __slots__ = ("steps", "step_count", "call_free")

    def __init__(self) -> None:
        self.steps: List[BatchStep] = []
        self.step_count = 0
        self.call_free = True


class _BEdge:
    """A batched CFG edge: target block + phi parallel-copy schedule.

    When every phi input is a frame slot or a constant and no written
    slot feeds another phi on the same edge (no swap hazard), the copy
    is precompiled to column form (``slot_pairs``/``const_pairs``) and
    applied column-by-column; otherwise ``resolvers`` replays the
    scalar per-lane atomic schedule."""

    __slots__ = ("target", "slots", "resolvers", "slot_pairs", "const_pairs")

    def __init__(
        self,
        target: _BBlock,
        slots: Tuple[int, ...],
        resolvers: Tuple[LaneResolver, ...],
        slot_pairs=None,
        const_pairs=None,
    ) -> None:
        self.target = target
        self.slots = slots
        self.resolvers = resolvers
        self.slot_pairs = slot_pairs
        self.const_pairs = const_pairs


class BatchProgram:
    """One function lowered to struct-of-arrays batched steps."""

    __slots__ = ("function", "frame_size", "num_args", "entry_edge")

    def __init__(
        self, function: Function, frame_size: int, num_args: int, entry_edge: _BEdge
    ) -> None:
        self.function = function
        self.frame_size = frame_size
        self.num_args = num_args
        self.entry_edge = entry_edge

    def execute(self, ctx: _BatchContext, lanes: List[int]) -> None:
        """Drive every lane in ``lanes`` to completion.

        Mirrors ``ExecutionPlan.execute``: accounting charges each step
        before it runs (phi copies are free), phi reads are atomic
        w.r.t. the edge taken, and falling off a block end is UB.
        Divergent terminators return per-edge lane groups; all but the
        first continue from a worklist, sharing the frame columns.
        Call-free blocks with budget headroom use bulk accounting (see
        :class:`_BBlock`), everything else counts step by step.
        """
        frame = ctx.frame
        counts = ctx.steps
        max_steps = ctx.max_steps
        running = ctx.running
        stack: List[Tuple[_BEdge, List[int]]] = [(self.entry_edge, lanes)]
        while stack:
            edge, active = stack.pop()
            # Groups always hold live lanes; a dead flag left over from a
            # terminator's traps would only force redundant filtering.
            ctx.dead = False
            # Lanes in one group execute the same steps, so their counts
            # advance in lockstep: a single conservative upper bound
            # replaces a per-block per-lane budget scan.
            worst = 0
            for lane in active:
                count = counts[lane]
                if count > worst:
                    worst = count
            while True:
                if edge.slots:
                    slot_pairs = edge.slot_pairs
                    if slot_pairs is not None:
                        for dst, src, reason in slot_pairs:
                            out = frame[dst]
                            column = frame[src]
                            for lane in active:
                                value = column[lane]
                                if value is _UNSET:
                                    ctx.trap(lane, reason)
                                else:
                                    out[lane] = value
                        for dst, constant in edge.const_pairs:
                            out = frame[dst]
                            for lane in active:
                                out[lane] = constant
                    else:
                        slots = edge.slots
                        resolvers = edge.resolvers
                        for lane in active:
                            try:
                                values = [
                                    resolve(ctx, frame, lane)
                                    for resolve in resolvers
                                ]
                            except _LANE_ERRORS as exc:
                                ctx.trap_exception(lane, exc)
                                continue
                            for index, slot in enumerate(slots):
                                frame[slot][lane] = values[index]
                    if ctx.dead:
                        ctx.dead = False
                        active = [lane for lane in active if running[lane]]
                        if not active:
                            break
                block = edge.target
                control = None
                if block.call_free and worst + block.step_count <= max_steps:
                    # Bulk accounting: no lane can time out inside this
                    # block and no call needs a mid-block counter, so a
                    # lane's counter is settled once, when it leaves —
                    # via ``pending`` on trap/finish, or below for lanes
                    # continuing into a successor group.
                    executed = 0
                    for step in block.steps:
                        executed += 1
                        ctx.pending = executed
                        control = step(ctx, frame, active)
                        if control is not None:
                            break
                        if ctx.dead:
                            ctx.dead = False
                            active = [lane for lane in active if running[lane]]
                            if not active:
                                break
                    if control is None:
                        # Every lane died mid-block, or the block has no
                        # terminator (same UB as the scalar paths); the
                        # trap charges ``pending`` like any other.
                        for lane in active:
                            ctx.trap(lane, "fell off the end of a block")
                        ctx.pending = 0
                        break
                    if control is not _RETURNED:
                        for _group_edge, group_lanes in control:
                            for lane in group_lanes:
                                counts[lane] += executed
                    worst += executed
                    ctx.pending = 0
                else:
                    for step in block.steps:
                        for lane in active:
                            count = counts[lane] + 1
                            counts[lane] = count
                            if count > max_steps:
                                ctx.timeout(lane)
                        if ctx.dead:
                            ctx.dead = False
                            active = [lane for lane in active if running[lane]]
                            if not active:
                                break
                        control = step(ctx, frame, active)
                        if control is not None:
                            break
                        if ctx.dead:
                            ctx.dead = False
                            active = [lane for lane in active if running[lane]]
                            if not active:
                                break
                    if control is None:
                        for lane in active:
                            ctx.trap(lane, "fell off the end of a block")
                        break
                    if control is not _RETURNED:
                        # Eager accounting moved individual counters;
                        # rebuild the group upper bound from them.
                        worst = 0
                        for _group_edge, group_lanes in control:
                            for lane in group_lanes:
                                count = counts[lane]
                                if count > worst:
                                    worst = count
                if control is _RETURNED:
                    break
                if not control:
                    break
                if len(control) > 1:
                    ctx.divergence_splits += len(control) - 1
                    stack.extend(control[1:])
                edge, active = control[0]
                ctx.dead = False


# -- operand compilation ------------------------------------------------------


def _operand_info(compiler: "_BatchCompiler", value: Value):
    """Classify one operand into const / slot / dyn form."""
    if isinstance(value, ConstantInt):
        return (_CONST, value.value)
    if isinstance(value, PoisonValue):
        return (_CONST, POISON)
    if isinstance(value, ConstantPointerNull):
        return (_CONST, NULL_POINTER)
    if isinstance(value, Function):
        return (_CONST, Pointer(f"func:{value.name}", 0))
    if isinstance(value, UndefValue):
        value_type = value.type
        label = f"undef:{id(value)}"

        def choose_undef(ctx, frame, lane):
            # Each use of undef is an independent per-lane choice.
            return ctx.interps[lane]._choose_value(value_type, label)

        return (_DYN, choose_undef)
    slot = compiler.slots.get(id(value))
    reason = f"use of unevaluated value %{value.name or '?'}"
    if slot is None:

        def raise_ub(ctx, frame, lane):
            raise UBError(reason)

        return (_DYN, raise_ub)
    return (_SLOT, slot, reason)


def _as_lane_resolver(info) -> LaneResolver:
    """Lower any operand info to the generic per-lane callable form."""
    kind = info[0]
    if kind is _CONST:
        constant = info[1]

        def read_constant(ctx, frame, lane):
            return constant

        return read_constant
    if kind is _SLOT:
        slot, reason = info[1], info[2]

        def read_slot(ctx, frame, lane):
            stored = frame[slot][lane]
            if stored is _UNSET:
                raise UBError(reason)
            return stored

        return read_slot
    return info[1]


# -- specialized lane loops ---------------------------------------------------


def _unary_step(fn, info, slot: int) -> BatchStep:
    """``out[lane] = fn(operand)`` across lanes, specialized by operand."""
    kind = info[0]
    if kind is _SLOT:
        source, reason = info[1], info[2]

        def step(ctx, frame, active):
            out = frame[slot]
            column = frame[source]
            for lane in active:
                value = column[lane]
                if value is _UNSET:
                    ctx.trap(lane, reason)
                    continue
                try:
                    out[lane] = fn(value)
                except UBError as ub:
                    ctx.trap(lane, ub.reason)

        return step
    if kind is _CONST:
        constant = info[1]

        def step(ctx, frame, active):
            out = frame[slot]
            for lane in active:
                try:
                    out[lane] = fn(constant)
                except UBError as ub:
                    ctx.trap(lane, ub.reason)

        return step
    resolve = info[1]

    def step(ctx, frame, active):
        out = frame[slot]
        for lane in active:
            try:
                out[lane] = fn(resolve(ctx, frame, lane))
            except UBError as ub:
                ctx.trap(lane, ub.reason)

    return step


def _binary_step(fn, lhs_info, rhs_info, slot: int) -> BatchStep:
    """``out[lane] = fn(lhs, rhs)`` across lanes, specialized on the
    (lhs, rhs) operand kinds so the hot slot/const shapes pay a single
    function call per lane."""
    lhs_kind = lhs_info[0]
    rhs_kind = rhs_info[0]
    if lhs_kind is _SLOT and rhs_kind is _SLOT:
        lhs_slot, lhs_reason = lhs_info[1], lhs_info[2]
        rhs_slot, rhs_reason = rhs_info[1], rhs_info[2]

        def step(ctx, frame, active):
            out = frame[slot]
            xs = frame[lhs_slot]
            ys = frame[rhs_slot]
            for lane in active:
                lhs = xs[lane]
                if lhs is _UNSET:
                    ctx.trap(lane, lhs_reason)
                    continue
                rhs = ys[lane]
                if rhs is _UNSET:
                    ctx.trap(lane, rhs_reason)
                    continue
                try:
                    out[lane] = fn(lhs, rhs)
                except UBError as ub:
                    ctx.trap(lane, ub.reason)

        return step
    if lhs_kind is _SLOT and rhs_kind is _CONST:
        lhs_slot, lhs_reason = lhs_info[1], lhs_info[2]
        rhs_const = rhs_info[1]

        def step(ctx, frame, active):
            out = frame[slot]
            xs = frame[lhs_slot]
            for lane in active:
                lhs = xs[lane]
                if lhs is _UNSET:
                    ctx.trap(lane, lhs_reason)
                    continue
                try:
                    out[lane] = fn(lhs, rhs_const)
                except UBError as ub:
                    ctx.trap(lane, ub.reason)

        return step
    if lhs_kind is _CONST and rhs_kind is _SLOT:
        lhs_const = lhs_info[1]
        rhs_slot, rhs_reason = rhs_info[1], rhs_info[2]

        def step(ctx, frame, active):
            out = frame[slot]
            ys = frame[rhs_slot]
            for lane in active:
                rhs = ys[lane]
                if rhs is _UNSET:
                    ctx.trap(lane, rhs_reason)
                    continue
                try:
                    out[lane] = fn(lhs_const, rhs)
                except UBError as ub:
                    ctx.trap(lane, ub.reason)

        return step
    lhs_resolve = _as_lane_resolver(lhs_info)
    rhs_resolve = _as_lane_resolver(rhs_info)

    def step(ctx, frame, active):
        out = frame[slot]
        for lane in active:
            try:
                out[lane] = fn(
                    lhs_resolve(ctx, frame, lane),
                    rhs_resolve(ctx, frame, lane),
                )
            except UBError as ub:
                ctx.trap(lane, ub.reason)

    return step


# Flagless binary opcodes that can neither trap nor overflow-poison:
# poison propagation plus one C-level operator call per lane.
_SIMPLE_BINARY_OPS = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
}


def _simple_binary_step(op, mask, lhs_info, rhs_info, slot):
    """Inlined step for never-trapping binary ops on slot/const operands.

    Mirrors the flagless branches of ``_binary_fn`` exactly (poison in →
    poison out, result masked to width) while skipping the per-lane
    closure call and try/except.  Returns ``None`` for operand shapes it
    does not cover; callers fall back to :func:`_binary_step`.
    """
    lhs_kind = lhs_info[0]
    rhs_kind = rhs_info[0]
    if lhs_kind is _SLOT and rhs_kind is _SLOT:
        lhs_slot, lhs_reason = lhs_info[1], lhs_info[2]
        rhs_slot, rhs_reason = rhs_info[1], rhs_info[2]

        def step(ctx, frame, active):
            out = frame[slot]
            xs = frame[lhs_slot]
            ys = frame[rhs_slot]
            for lane in active:
                lhs = xs[lane]
                rhs = ys[lane]
                if lhs is _UNSET:
                    ctx.trap(lane, lhs_reason)
                elif rhs is _UNSET:
                    ctx.trap(lane, rhs_reason)
                elif lhs is POISON or rhs is POISON:
                    out[lane] = POISON
                else:
                    out[lane] = op(lhs, rhs) & mask

        return step
    if lhs_kind is _SLOT and rhs_kind is _CONST:
        lhs_slot, lhs_reason = lhs_info[1], lhs_info[2]
        rhs_const = rhs_info[1]
        if not isinstance(rhs_const, int):
            return None

        def step(ctx, frame, active):
            out = frame[slot]
            xs = frame[lhs_slot]
            for lane in active:
                lhs = xs[lane]
                if lhs is _UNSET:
                    ctx.trap(lane, lhs_reason)
                elif lhs is POISON:
                    out[lane] = POISON
                else:
                    out[lane] = op(lhs, rhs_const) & mask

        return step
    if lhs_kind is _CONST and rhs_kind is _SLOT:
        lhs_const = lhs_info[1]
        rhs_slot, rhs_reason = rhs_info[1], rhs_info[2]
        if not isinstance(lhs_const, int):
            return None

        def step(ctx, frame, active):
            out = frame[slot]
            ys = frame[rhs_slot]
            for lane in active:
                rhs = ys[lane]
                if rhs is _UNSET:
                    ctx.trap(lane, rhs_reason)
                elif rhs is POISON:
                    out[lane] = POISON
                else:
                    out[lane] = op(lhs_const, rhs) & mask

        return step
    return None


def _int_icmp_step(inst: ICmpInst, lhs_info, rhs_info, slot):
    """Inlined step for icmp over integer-typed slot/const operands.

    Integer slots only ever hold ints or poison (no inttoptr in the
    cast set), so the pointer normalization of :func:`_icmp_fn` is
    compiled out and the signedness conversion inlined.  Returns
    ``None`` for shapes it does not cover.
    """
    if not (
        isinstance(inst.lhs.type, IntType) and isinstance(inst.rhs.type, IntType)
    ):
        return None
    compare = _ICMP_COMPARATORS[inst.predicate]
    signed = inst.predicate in _SIGNED_ICMP
    width = inst.lhs.type.width
    sign_bit = 1 << (width - 1)
    span = 1 << width
    lhs_kind = lhs_info[0]
    rhs_kind = rhs_info[0]
    if lhs_kind is _SLOT and rhs_kind is _SLOT:
        lhs_slot, lhs_reason = lhs_info[1], lhs_info[2]
        rhs_slot, rhs_reason = rhs_info[1], rhs_info[2]

        if signed:

            def step(ctx, frame, active):
                out = frame[slot]
                xs = frame[lhs_slot]
                ys = frame[rhs_slot]
                for lane in active:
                    lhs = xs[lane]
                    rhs = ys[lane]
                    if lhs is _UNSET:
                        ctx.trap(lane, lhs_reason)
                    elif rhs is _UNSET:
                        ctx.trap(lane, rhs_reason)
                    elif lhs is POISON or rhs is POISON:
                        out[lane] = POISON
                    else:
                        slhs = lhs - span if lhs >= sign_bit else lhs
                        srhs = rhs - span if rhs >= sign_bit else rhs
                        out[lane] = 1 if compare(slhs, srhs) else 0

            return step

        def step(ctx, frame, active):
            out = frame[slot]
            xs = frame[lhs_slot]
            ys = frame[rhs_slot]
            for lane in active:
                lhs = xs[lane]
                rhs = ys[lane]
                if lhs is _UNSET:
                    ctx.trap(lane, lhs_reason)
                elif rhs is _UNSET:
                    ctx.trap(lane, rhs_reason)
                elif lhs is POISON or rhs is POISON:
                    out[lane] = POISON
                else:
                    out[lane] = 1 if compare(lhs, rhs) else 0

        return step
    if lhs_kind is _SLOT and rhs_kind is _CONST:
        lhs_slot, lhs_reason = lhs_info[1], lhs_info[2]
        rhs_const = rhs_info[1]
        if not isinstance(rhs_const, int):
            return None
        rhs_value = to_signed(rhs_const, width) if signed else rhs_const

        if signed:

            def step(ctx, frame, active):
                out = frame[slot]
                xs = frame[lhs_slot]
                for lane in active:
                    lhs = xs[lane]
                    if lhs is _UNSET:
                        ctx.trap(lane, lhs_reason)
                    elif lhs is POISON:
                        out[lane] = POISON
                    else:
                        slhs = lhs - span if lhs >= sign_bit else lhs
                        out[lane] = 1 if compare(slhs, rhs_value) else 0

            return step

        def step(ctx, frame, active):
            out = frame[slot]
            xs = frame[lhs_slot]
            for lane in active:
                lhs = xs[lane]
                if lhs is _UNSET:
                    ctx.trap(lane, lhs_reason)
                elif lhs is POISON:
                    out[lane] = POISON
                else:
                    out[lane] = 1 if compare(lhs, rhs_value) else 0

        return step
    if lhs_kind is _CONST and rhs_kind is _SLOT:
        lhs_const = lhs_info[1]
        rhs_slot, rhs_reason = rhs_info[1], rhs_info[2]
        if not isinstance(lhs_const, int):
            return None
        lhs_value = to_signed(lhs_const, width) if signed else lhs_const

        if signed:

            def step(ctx, frame, active):
                out = frame[slot]
                ys = frame[rhs_slot]
                for lane in active:
                    rhs = ys[lane]
                    if rhs is _UNSET:
                        ctx.trap(lane, rhs_reason)
                    elif rhs is POISON:
                        out[lane] = POISON
                    else:
                        srhs = rhs - span if rhs >= sign_bit else rhs
                        out[lane] = 1 if compare(lhs_value, srhs) else 0

            return step

        def step(ctx, frame, active):
            out = frame[slot]
            ys = frame[rhs_slot]
            for lane in active:
                rhs = ys[lane]
                if rhs is _UNSET:
                    ctx.trap(lane, rhs_reason)
                elif rhs is POISON:
                    out[lane] = POISON
                else:
                    out[lane] = 1 if compare(lhs_value, rhs) else 0

        return step
    return None


def _icmp_fn(inst: ICmpInst):
    """Per-value icmp closure mirroring ``_Compiler.compile_icmp``."""
    compare = _ICMP_COMPARATORS[inst.predicate]
    signed = inst.predicate in _SIGNED_ICMP
    width = inst.lhs.type.width if isinstance(inst.lhs.type, IntType) else 64
    lhs_address = _constant_pointer_address(inst.lhs)
    rhs_address = _constant_pointer_address(inst.rhs)
    if isinstance(inst.lhs.type, IntType) and isinstance(inst.rhs.type, IntType):
        # Integer-typed operands only ever hold ints or poison at
        # runtime (the cast set has no inttoptr), so the pointer
        # normalization can be compiled out.
        if signed:

            def fn_signed(lhs_value, rhs_value):
                if lhs_value is POISON or rhs_value is POISON:
                    return POISON
                return int(
                    compare(to_signed(lhs_value, width), to_signed(rhs_value, width))
                )

            return fn_signed

        def fn_unsigned(lhs_value, rhs_value):
            if lhs_value is POISON or rhs_value is POISON:
                return POISON
            return int(compare(lhs_value, rhs_value))

        return fn_unsigned

    def fn(lhs_value, rhs_value):
        if lhs_value is POISON or rhs_value is POISON:
            return POISON
        if isinstance(lhs_value, Pointer) or isinstance(rhs_value, Pointer):
            if lhs_address is not None:
                lhs_num = lhs_address
            elif isinstance(lhs_value, Pointer):
                lhs_num = pointer_address(lhs_value)
            else:
                lhs_num = lhs_value
            if rhs_address is not None:
                rhs_num = rhs_address
            elif isinstance(rhs_value, Pointer):
                rhs_num = pointer_address(rhs_value)
            else:
                rhs_num = rhs_value
            effective_width = 64
        else:
            lhs_num, rhs_num = lhs_value, rhs_value
            effective_width = width
        if signed:
            lhs_num = to_signed(lhs_num, effective_width)
            rhs_num = to_signed(rhs_num, effective_width)
        return int(compare(lhs_num, rhs_num))

    return fn


# -- the batch compiler -------------------------------------------------------


class _BatchCompiler:
    """Mirror of ``repro.tv.compile._Compiler`` emitting batched steps.

    Slot layout is identical to the scalar plan (arguments, then
    instructions in program order; the trailing depth slot is unused
    here — batched execution always runs at call depth 0)."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.slots: Dict[int, int] = {}
        for index, argument in enumerate(function.arguments):
            self.slots[id(argument)] = index
        position = len(function.arguments)
        for block in function.blocks:
            for inst in block.instructions:
                self.slots[id(inst)] = position
                position += 1
        self.frame_size = position + 1
        self.blocks: Dict[int, _BBlock] = {
            id(block): _BBlock() for block in function.blocks
        }

    def build(self) -> BatchProgram:
        for block in self.function.blocks:
            compiled = self.blocks[id(block)]
            start = block.first_non_phi_index()
            instructions = block.instructions[start:]
            compiled.steps = [
                self.compile_instruction(block, inst)
                for inst in instructions
            ]
            compiled.step_count = len(instructions)
            compiled.call_free = not any(
                isinstance(inst, CallInst)
                and not inst.callee.name.startswith("llvm.")
                for inst in instructions
            )
        entry = self.function.entry_block()
        return BatchProgram(
            self.function,
            self.frame_size,
            len(self.function.arguments),
            self.edge(None, entry),
        )

    def operand(self, value: Value):
        return _operand_info(self, value)

    def lane_operand(self, value: Value) -> LaneResolver:
        return _as_lane_resolver(_operand_info(self, value))

    def edge(self, pred: Optional[BasicBlock], succ: BasicBlock) -> _BEdge:
        slots: List[int] = []
        infos: List[Any] = []
        for phi in succ.phis():
            incoming = phi.incoming_value_for(pred)
            if incoming is None:
                infos.append(
                    (_DYN, _ub_lane_raiser("phi has no incoming value for edge"))
                )
            else:
                infos.append(self.operand(incoming))
            slots.append(self.slots[id(phi)])
        resolvers = tuple(_as_lane_resolver(info) for info in infos)
        slot_pairs = const_pairs = None
        if all(info[0] is not _DYN for info in infos):
            sources = {info[1] for info in infos if info[0] is _SLOT}
            if not any(slot in sources for slot in slots):
                # No undef/oracle choices and no phi reads another phi
                # written on this edge: the parallel copy degenerates to
                # independent column copies.
                slot_pairs = tuple(
                    (slot, info[1], info[2])
                    for slot, info in zip(slots, infos)
                    if info[0] is _SLOT
                )
                const_pairs = tuple(
                    (slot, info[1])
                    for slot, info in zip(slots, infos)
                    if info[0] is _CONST
                )
        return _BEdge(
            self.blocks[id(succ)], tuple(slots), resolvers, slot_pairs, const_pairs
        )

    # -- instructions ----------------------------------------------------

    def compile_instruction(self, block: BasicBlock, inst: Instruction) -> BatchStep:
        if isinstance(inst, BinaryOperator):
            lhs = self.operand(inst.lhs)
            rhs = self.operand(inst.rhs)
            slot = self.slots[id(inst)]
            simple_op = _SIMPLE_BINARY_OPS.get(inst.opcode)
            if (
                simple_op is not None
                and not inst.nuw
                and not inst.nsw
                and not inst.exact
            ):
                step = _simple_binary_step(
                    simple_op, (1 << inst.type.width) - 1, lhs, rhs, slot
                )
                if step is not None:
                    return step
            return _binary_step(
                _binary_fn(
                    inst.opcode, inst.type.width, inst.nuw, inst.nsw, inst.exact
                ),
                lhs,
                rhs,
                slot,
            )
        if isinstance(inst, ICmpInst):
            lhs = self.operand(inst.lhs)
            rhs = self.operand(inst.rhs)
            slot = self.slots[id(inst)]
            step = _int_icmp_step(inst, lhs, rhs, slot)
            if step is not None:
                return step
            return _binary_step(_icmp_fn(inst), lhs, rhs, slot)
        if isinstance(inst, SelectInst):
            return self.compile_select(inst)
        if isinstance(inst, CastInst):
            return self.compile_cast(inst)
        if isinstance(inst, FreezeInst):
            return self.compile_freeze(inst)
        if isinstance(inst, AllocaInst):
            return self.compile_alloca(inst)
        if isinstance(inst, LoadInst):
            return self.compile_load(inst)
        if isinstance(inst, StoreInst):
            return self.compile_store(inst)
        if isinstance(inst, GEPInst):
            return self.compile_gep(inst)
        if isinstance(inst, CallInst):
            return self.compile_call(inst)
        if isinstance(inst, RetInst):
            return self.compile_ret(inst)
        if isinstance(inst, BrInst):
            return self.compile_br(block, inst)
        if isinstance(inst, SwitchInst):
            return self.compile_switch(block, inst)
        if isinstance(inst, UnreachableInst):
            return _trap_all_step("reached unreachable")
        return _trap_all_step(f"unsupported instruction {inst.opcode}")

    def compile_select(self, inst: SelectInst) -> BatchStep:
        condition = self.operand(inst.condition)
        # Only the taken arm is evaluated (undef/oracle order), so arms
        # stay in per-lane resolver form.
        true_value = self.lane_operand(inst.true_value)
        false_value = self.lane_operand(inst.false_value)
        slot = self.slots[id(inst)]
        if condition[0] is _SLOT:
            cond_slot, cond_reason = condition[1], condition[2]

            def step(ctx, frame, active):
                out = frame[slot]
                conditions = frame[cond_slot]
                for lane in active:
                    chosen = conditions[lane]
                    if chosen is _UNSET:
                        ctx.trap(lane, cond_reason)
                        continue
                    try:
                        if chosen is POISON:
                            out[lane] = POISON
                        elif chosen == 1:
                            out[lane] = true_value(ctx, frame, lane)
                        else:
                            out[lane] = false_value(ctx, frame, lane)
                    except UBError as ub:
                        ctx.trap(lane, ub.reason)

            return step
        cond_resolve = _as_lane_resolver(condition)

        def step(ctx, frame, active):
            out = frame[slot]
            for lane in active:
                try:
                    chosen = cond_resolve(ctx, frame, lane)
                    if chosen is POISON:
                        out[lane] = POISON
                    elif chosen == 1:
                        out[lane] = true_value(ctx, frame, lane)
                    else:
                        out[lane] = false_value(ctx, frame, lane)
                except UBError as ub:
                    ctx.trap(lane, ub.reason)

        return step

    def compile_cast(self, inst: CastInst) -> BatchStep:
        info = self.operand(inst.value)
        slot = self.slots[id(inst)]
        opcode = inst.opcode
        if opcode == "trunc":
            mask = (1 << inst.type.width) - 1

            def fn(value):
                return POISON if value is POISON else value & mask

            return _unary_step(fn, info, slot)
        if opcode == "zext":

            def fn(value):
                return value

            return _unary_step(fn, info, slot)
        if opcode == "sext":
            src_width = inst.src_type.width
            dst_width = inst.type.width

            def fn(value):
                if value is POISON:
                    return POISON
                return to_unsigned(to_signed(value, src_width), dst_width)

            return _unary_step(fn, info, slot)

        def fn(value):  # constructor-validated; defensive
            raise UBError(f"unsupported cast {opcode}")

        return _unary_step(fn, info, slot)

    def compile_freeze(self, inst: FreezeInst) -> BatchStep:
        value = self.lane_operand(inst.value)
        slot = self.slots[id(inst)]
        frozen_type = inst.type
        label = f"freeze:{id(inst)}"

        def step(ctx, frame, active):
            out = frame[slot]
            interps = ctx.interps
            for lane in active:
                try:
                    resolved = value(ctx, frame, lane)
                    if resolved is POISON:
                        # freeze of poison picks an arbitrary-but-fixed
                        # value through this lane's oracle, like undef.
                        resolved = interps[lane]._choose_value(frozen_type, label)
                    out[lane] = resolved
                except UBError as ub:
                    ctx.trap(lane, ub.reason)

        return step

    def compile_alloca(self, inst: AllocaInst) -> BatchStep:
        size = _required_size(inst.allocated_type)
        slot = self.slots[id(inst)]

        def step(ctx, frame, active):
            out = frame[slot]
            interps = ctx.interps
            for lane in active:
                interp = interps[lane]
                interp._alloca_counter += 1
                out[lane] = interp.memory.add_block(
                    f"alloca:{interp._alloca_counter}", size
                )

        return step

    def compile_load(self, inst: LoadInst) -> BatchStep:
        pointer = self.lane_operand(inst.pointer)
        size = _required_size(inst.type)
        slot = self.slots[id(inst)]
        if inst.type.is_pointer():
            label = f"load:{id(inst)}"

            def step(ctx, frame, active):
                out = frame[slot]
                interps = ctx.interps
                for lane in active:
                    try:
                        resolved = pointer(ctx, frame, lane)
                        if resolved is POISON:
                            raise UBError("load from poison pointer")
                        if not isinstance(resolved, Pointer):
                            raise UBError("load from non-pointer value")
                        interp = interps[lane]
                        data = interp.memory.load_bytes(resolved, size)
                        out[lane] = interp._bytes_to_pointer(data, label)
                    except _LANE_ERRORS as exc:
                        ctx.trap_exception(lane, exc)

            return step
        mask = (1 << inst.type.width) - 1
        undef_label = f"loadundef:{id(inst)}"

        def step(ctx, frame, active):
            out = frame[slot]
            interps = ctx.interps
            for lane in active:
                try:
                    resolved = pointer(ctx, frame, lane)
                    if resolved is POISON:
                        raise UBError("load from poison pointer")
                    if not isinstance(resolved, Pointer):
                        raise UBError("load from non-pointer value")
                    interp = interps[lane]
                    data = interp.memory.load_bytes(resolved, size)
                    for byte in data:
                        if byte is POISON:
                            out[lane] = POISON
                            break
                    else:
                        concrete: List[int] = []
                        for index, byte in enumerate(data):
                            if byte is UNDEF_BYTE:
                                interp._note_truncated_domain()
                                concrete.append(
                                    interp.oracle.choose(
                                        f"{undef_label}:{index}", _UNDEF_BYTE_CHOICES
                                    )
                                )
                            elif isinstance(byte, tuple):
                                concrete.append(interp._pointer_byte_as_int(byte))
                            else:
                                concrete.append(byte)
                        out[lane] = bytes_to_int(concrete) & mask
                except _LANE_ERRORS as exc:
                    ctx.trap_exception(lane, exc)

        return step

    def compile_store(self, inst: StoreInst) -> BatchStep:
        pointer = self.lane_operand(inst.pointer)
        value = self.lane_operand(inst.value)
        size = _required_size(inst.value.type)

        def step(ctx, frame, active):
            interps = ctx.interps
            for lane in active:
                try:
                    resolved = pointer(ctx, frame, lane)
                    if resolved is POISON:
                        raise UBError("store to poison pointer")
                    if not isinstance(resolved, Pointer):
                        raise UBError("store to non-pointer value")
                    stored = value(ctx, frame, lane)
                    if stored is POISON:
                        data: List[Any] = [POISON] * size
                    elif isinstance(stored, Pointer):
                        data = [
                            ("ptr", stored.block, stored.offset, index)
                            for index in range(size)
                        ]
                    else:
                        data = int_to_bytes(stored, size)
                    interps[lane].memory.store_bytes(resolved, data)
                except _LANE_ERRORS as exc:
                    ctx.trap_exception(lane, exc)

        return step

    def compile_gep(self, inst: GEPInst) -> BatchStep:
        pointer = self.lane_operand(inst.pointer)
        element_size = _required_size(inst.source_type)
        index_parts = tuple(
            (self.lane_operand(index), index.type.width)
            for index in inst.indices
        )
        inbounds = inst.inbounds
        slot = self.slots[id(inst)]

        def step(ctx, frame, active):
            out = frame[slot]
            interps = ctx.interps
            for lane in active:
                try:
                    resolved = pointer(ctx, frame, lane)
                    if resolved is POISON:
                        out[lane] = POISON
                        continue
                    if not isinstance(resolved, Pointer):
                        raise UBError("gep on non-pointer value")
                    offset = resolved.offset
                    poisoned = False
                    for resolve_index, width in index_parts:
                        index_value = resolve_index(ctx, frame, lane)
                        if index_value is POISON:
                            out[lane] = POISON
                            poisoned = True
                            break
                        offset += to_signed(index_value, width) * element_size
                    if poisoned:
                        continue
                    result: Any = Pointer(resolved.block, offset)
                    if inbounds and not resolved.is_null():
                        memory = interps[lane].memory
                        if memory.has_block(resolved.block):
                            if offset < 0 or offset > memory.block_size(
                                resolved.block
                            ):
                                result = POISON
                    out[lane] = result
                except _LANE_ERRORS as exc:
                    ctx.trap_exception(lane, exc)

        return step

    def compile_call(self, inst: CallInst) -> BatchStep:
        callee = inst.callee
        resolvers = tuple(self.lane_operand(argument) for argument in inst.args)
        if callee.name.startswith("llvm."):
            return self.compile_intrinsic(inst, resolvers)
        nonnull_checks = tuple(
            (index, argument.attributes.has("noundef"))
            for index, argument in enumerate(callee.arguments)
            if index < len(inst.args) and argument.attributes.has("nonnull")
        )
        has_result = not inst.type.is_void()
        slot = self.slots[id(inst)] if has_result else None

        def step(ctx, frame, active):
            out = frame[slot] if slot is not None else None
            interps = ctx.interps
            counts = ctx.steps
            for lane in active:
                interp = interps[lane]
                try:
                    args = [resolve(ctx, frame, lane) for resolve in resolvers]
                    for index, noundef in nonnull_checks:
                        value = args[index]
                        if isinstance(value, Pointer) and value.is_null():
                            if noundef:
                                raise UBError(
                                    "null passed to nonnull noundef argument"
                                )
                            args[index] = POISON
                    # The nested call shares this lane's step budget:
                    # sync the scalar counter in, run through the exact
                    # scalar _call path (plans, externals, depth), and
                    # sync whatever it consumed back out.
                    interp._steps = counts[lane]
                    try:
                        result = interp._call(callee, args, 1)
                    finally:
                        counts[lane] = interp._steps
                    if out is not None:
                        out[lane] = result
                except _LANE_ERRORS as exc:
                    ctx.trap_exception(lane, exc)

        return step

    def compile_intrinsic(
        self, inst: CallInst, resolvers: Tuple[LaneResolver, ...]
    ) -> BatchStep:
        base = inst.intrinsic_name()
        name = inst.callee.name
        if base == "llvm.assume":
            bundle_checks = tuple(
                (
                    bundle.tag,
                    tuple(
                        self.lane_operand(value)
                        for value in inst.bundle_operands(bundle)
                    ),
                )
                for bundle in inst.bundles
            )

            def step(ctx, frame, active):
                for lane in active:
                    try:
                        args = [resolve(ctx, frame, lane) for resolve in resolvers]
                        condition = args[0]
                        if condition is POISON:
                            raise UBError("assume of poison")
                        if condition != 1:
                            raise UBError("assume of false")
                        for tag, operand_resolvers in bundle_checks:
                            operands = [
                                resolve(ctx, frame, lane)
                                for resolve in operand_resolvers
                            ]
                            if tag == "align" and len(operands) == 2:
                                pointer, align = operands
                                if pointer is POISON or align is POISON:
                                    raise UBError("assume align on poison")
                                if isinstance(pointer, Pointer) and align:
                                    if pointer_address(pointer) % align != 0:
                                        raise UBError("assume align violated")
                            elif tag == "nonnull" and operands:
                                pointer = operands[0]
                                if (
                                    isinstance(pointer, Pointer)
                                    and pointer.is_null()
                                ):
                                    raise UBError("assume nonnull violated")
                    except _LANE_ERRORS as exc:
                        ctx.trap_exception(lane, exc)

            return step
        width = inst.type.width if isinstance(inst.type, IntType) else 0
        mask = (1 << width) - 1 if width else 0
        has_result = not inst.type.is_void()
        slot = self.slots[id(inst)] if has_result else None

        def step(ctx, frame, active):
            out = frame[slot] if slot is not None else None
            for lane in active:
                try:
                    args = [resolve(ctx, frame, lane) for resolve in resolvers]
                    for value in args:
                        if value is POISON:
                            result = POISON
                            break
                    else:
                        result = evaluate_intrinsic(base, name, width, mask, args)
                    if out is not None:
                        out[lane] = result
                except _LANE_ERRORS as exc:
                    ctx.trap_exception(lane, exc)

        return step

    def compile_ret(self, inst: RetInst) -> BatchStep:
        if inst.return_value is None:

            def step(ctx, frame, active):
                for lane in active:
                    ctx.finish(lane, None)
                return _RETURNED

            return step
        info = self.operand(inst.return_value)
        if info[0] is _SLOT:
            source, reason = info[1], info[2]

            def step(ctx, frame, active):
                column = frame[source]
                for lane in active:
                    value = column[lane]
                    if value is _UNSET:
                        ctx.trap(lane, reason)
                        continue
                    ctx.finish(lane, value)
                return _RETURNED

            return step
        resolve = _as_lane_resolver(info)

        def step(ctx, frame, active):
            for lane in active:
                try:
                    ctx.finish(lane, resolve(ctx, frame, lane))
                except UBError as ub:
                    ctx.trap(lane, ub.reason)
            return _RETURNED

        return step

    def compile_br(self, block: BasicBlock, inst: BrInst) -> BatchStep:
        if not inst.is_conditional():
            edge = self.edge(block, inst.operands[0])

            def step(ctx, frame, active):
                return ((edge, active),)

            return step
        condition = self.operand(inst.condition)
        true_edge = self.edge(block, inst.operands[1])
        false_edge = self.edge(block, inst.operands[2])
        if condition[0] is _SLOT:
            cond_slot, cond_reason = condition[1], condition[2]

            def step(ctx, frame, active):
                conditions = frame[cond_slot]
                true_lanes: List[int] = []
                false_lanes: List[int] = []
                for lane in active:
                    chosen = conditions[lane]
                    if chosen is _UNSET:
                        ctx.trap(lane, cond_reason)
                    elif chosen is POISON:
                        ctx.trap(lane, "branch on poison")
                    elif chosen == 1:
                        true_lanes.append(lane)
                    else:
                        false_lanes.append(lane)
                groups = []
                if true_lanes:
                    groups.append((true_edge, true_lanes))
                if false_lanes:
                    groups.append((false_edge, false_lanes))
                return groups

            return step
        cond_resolve = _as_lane_resolver(condition)

        def step(ctx, frame, active):
            true_lanes = []
            false_lanes = []
            for lane in active:
                try:
                    chosen = cond_resolve(ctx, frame, lane)
                except UBError as ub:
                    ctx.trap(lane, ub.reason)
                    continue
                if chosen is POISON:
                    ctx.trap(lane, "branch on poison")
                elif chosen == 1:
                    true_lanes.append(lane)
                else:
                    false_lanes.append(lane)
            groups = []
            if true_lanes:
                groups.append((true_edge, true_lanes))
            if false_lanes:
                groups.append((false_edge, false_lanes))
            return groups

        return step

    def compile_switch(self, block: BasicBlock, inst: SwitchInst) -> BatchStep:
        value = self.lane_operand(inst.value)
        table: Dict[Any, _BEdge] = {}
        for case_value, case_block in inst.cases():
            # First matching case wins, exactly like the scalar scan.
            table.setdefault(case_value.value, self.edge(block, case_block))
        default_edge = self.edge(block, inst.default)

        def step(ctx, frame, active):
            groups: List[Tuple[_BEdge, List[int]]] = []
            by_edge: Dict[int, List[int]] = {}
            for lane in active:
                try:
                    resolved = value(ctx, frame, lane)
                except UBError as ub:
                    ctx.trap(lane, ub.reason)
                    continue
                if resolved is POISON:
                    ctx.trap(lane, "switch on poison")
                    continue
                try:
                    edge = table.get(resolved)
                except TypeError:  # unhashable runtime value: no match
                    edge = None
                if edge is None:
                    edge = default_edge
                lanes = by_edge.get(id(edge))
                if lanes is None:
                    lanes = []
                    by_edge[id(edge)] = lanes
                    groups.append((edge, lanes))
                lanes.append(lane)
            return groups

        return step


def _ub_lane_raiser(reason: str) -> LaneResolver:
    def raise_ub(ctx, frame, lane):
        raise UBError(reason)

    return raise_ub


def _trap_all_step(reason: str) -> BatchStep:
    def step(ctx, frame, active):
        for lane in active:
            ctx.trap(lane, reason)
        return ()

    return step


def _required_size(type) -> int:
    """Like ``_safe_size`` but refusing deferred errors: the scalar path
    raises its ValueError out of the whole check in input order, which a
    batch cannot reproduce — so such functions stay on the scalar path."""
    size, error = _safe_size(type)
    if error is not None:
        raise BatchUnsupported(error)
    return size


def compile_batch_program(function: Function) -> BatchProgram:
    """Lower one defined function into a :class:`BatchProgram`.

    Raises (:class:`BatchUnsupported` or anything the IR walk trips
    over) when the function cannot be batch-executed; callers fall back
    to scalar enumeration via :func:`batch_program_for`.
    """
    if function.is_declaration():
        raise BatchUnsupported(f"cannot batch declaration @{function.name}")
    return _BatchCompiler(function).build()


def batch_program_for(plan: Optional[ExecutionPlan]) -> Optional[BatchProgram]:
    """The batch program for a scalar plan, compiled lazily and cached on
    the plan itself — plan caching (global, fingerprint-keyed) then
    shares batch programs across mutants for free."""
    if plan is None:
        return None
    program = plan.batch_program
    if program is None:
        try:
            program = compile_batch_program(plan.function)
        except Exception:
            program = _BATCH_FAILED
        plan.batch_program = program
    return None if program is _BATCH_FAILED else program


# -- the runner ---------------------------------------------------------------


class BatchRunner:
    """Executes batches for one module side, reusing a lane arena.

    Each lane is backed by a real scalar :class:`Interpreter` (its own
    memory, oracle, alloca/call counters), reset per run exactly like
    the scalar enumeration's arena — nested calls, external-call
    modeling, and oracle choices run through unmodified scalar code.
    """

    def __init__(
        self, module, limits: Optional[ExecutionLimits] = None, plans=None
    ) -> None:
        self.module = module
        self.limits = limits or ExecutionLimits()
        self._plans = plans
        self._interps: List[Interpreter] = []

    def _lane_interp(self, index: int) -> Interpreter:
        while len(self._interps) <= index:
            self._interps.append(
                Interpreter(
                    self.module, None, self.limits, compiled=True, plans=self._plans
                )
            )
        return self._interps[index]

    def run_batch(self, function: Function, program: BatchProgram, lanes):
        """Run one batch; ``lanes`` is a list of ``(runtime_args, blocks,
        observable, oracle)`` tuples.  Returns per-lane ``(status, value,
        memory, detail, steps)`` tuples mirroring the scalar
        ``_run_once`` (plus the lane's exact step count)."""
        size = len(lanes)
        ctx = _BatchContext(size, self.limits.max_steps)
        frame = [[_UNSET] * size for _ in range(program.frame_size)]
        num_args = program.num_args
        depth_exceeded = 0 > self.limits.max_call_depth
        for index, (runtime_args, blocks, _observable, oracle) in enumerate(lanes):
            interp = self._lane_interp(index)
            interp.reset(oracle)
            memory = interp.memory
            for block_id, block_size, contents in blocks:
                memory.add_block(block_id, block_size, list(contents))
            ctx.interps.append(interp)
            count = num_args
            if len(runtime_args) < count:
                count = len(runtime_args)
            for position in range(count):
                frame[position][index] = runtime_args[position]
            # Entry checks, in scalar _call order: depth, then argument
            # attributes (which may read this lane's fresh memory).
            if depth_exceeded:
                ctx.timeout(index)
                continue
            try:
                interp._check_argument_attributes(function, runtime_args)
            except _LANE_ERRORS as exc:
                ctx.trap_exception(index, exc)
        ctx.frame = frame
        ctx.dead = False
        live = [index for index in range(size) if ctx.running[index]]
        stats = _GLOBAL_BATCH_STATS
        stats.batches += 1
        stats.lanes += size
        if live:
            program.execute(ctx, live)
        stats.divergence_splits += ctx.divergence_splits
        results = []
        for index in range(size):
            status = ctx.statuses[index]
            steps = ctx.steps[index]
            if status == "ok":
                snapshot = ctx.interps[index].memory.snapshot(lanes[index][2])
                results.append(
                    (
                        "ok",
                        ctx.values[index],
                        tuple(sorted(snapshot.items())),
                        "",
                        steps,
                    )
                )
            elif status == "ub":
                results.append(("ub", None, (), ctx.details[index], steps))
            elif status == "timeout":
                results.append(("timeout", None, (), "", steps))
            else:  # pragma: no cover - executor invariant
                raise RuntimeError(
                    f"batched lane {index} of @{function.name} did not terminate"
                )
        return results
