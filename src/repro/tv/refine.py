"""Bounded refinement checking (the Alive2 analog).

``check_refinement(src, tgt)`` decides whether the optimized function
refines the original: for every input, every behavior of the target must
be allowed by some behavior of the source, under the standard ordering

    UB  ⊑  poison  ⊑  concrete value,

applied to the return value and to every externally-visible memory byte.

Instead of SMT solving, behavior sets are enumerated: inputs are
exhaustively covered for small state spaces and sampled (corner values,
literal-constant neighborhoods, aliasing patterns) otherwise, and
nondeterminism (undef uses, freeze-of-poison) is enumerated through the
oracle up to a budget.  Partial enumeration can only make the checker
*miss* bugs or declare an input inconclusive — it never produces a false
refinement failure.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..analysis.constants_pool import ConstantPool
from ..ir.fingerprint import fingerprint_function
from ..ir.function import Function
from ..ir.instructions import CallInst
from ..ir.intrinsics import lookup as lookup_intrinsic
from ..ir.module import Module
from ..ir.types import IntType
from .batch import BatchRunner, batch_program_for, global_batch_stats
from .compile import LRUCache
from .domain import (
    NULL_POINTER,
    POISON,
    Pointer,
    RuntimeValue,
    interesting_values,
)
from .interp import ExecutionLimits, Interpreter, StepLimitExceeded, UBError
from .memory import POISON as _POISON_BYTE, UNDEF_BYTE
from .oracle import PathOracle, advance_path


class Verdict(Enum):
    CORRECT = "correct"            # no refinement violation found (bounded)
    UNSOUND = "unsound"            # definite counterexample found
    INCONCLUSIVE = "inconclusive"  # nondeterminism budget exhausted
    UNSUPPORTED = "unsupported"    # function outside the validator's scope


@dataclass(frozen=True)
class Outcome:
    """One observed behavior: status, return value, final visible memory."""

    status: str                    # "ok" | "ub" | "timeout"
    value: object = None
    memory: Tuple[Tuple[str, Tuple], ...] = ()
    detail: str = ""

    def is_ub(self) -> bool:
        return self.status == "ub"

    def is_timeout(self) -> bool:
        return self.status == "timeout"


@dataclass(frozen=True)
class PointerInput:
    """Description of a pointer argument's target for one test input."""

    block: str                     # logical block id ("" means null)
    size: int = 0
    contents: Tuple[int, ...] = ()

    def is_null(self) -> bool:
        return not self.block


@dataclass(frozen=True)
class TestInput:
    """One concrete argument vector (pointer args described symbolically)."""

    args: Tuple[object, ...]       # int | PointerInput

    def describe(self, function: Function) -> str:
        parts = []
        for argument, value in zip(function.arguments, self.args):
            name = f"%{argument.name}" if argument.name else "%?"
            if isinstance(value, PointerInput):
                if value.is_null():
                    parts.append(f"{name} = null")
                else:
                    parts.append(f"{name} = &{value.block}[{value.size}]")
            else:
                parts.append(f"{name} = {value}")
        return ", ".join(parts)


@dataclass
class Counterexample:
    function_name: str
    test_input: TestInput
    input_description: str
    src_outcomes: List[Outcome]
    tgt_outcome: Outcome

    def __str__(self) -> str:
        src = "; ".join(_describe_outcome(o) for o in self.src_outcomes)
        return (
            f"refinement failure in @{self.function_name} for "
            f"[{self.input_description}]: source gives {{{src}}} but "
            f"target gives {_describe_outcome(self.tgt_outcome)}"
        )


@dataclass
class TVResult:
    verdict: Verdict
    counterexample: Optional[Counterexample] = None
    inputs_checked: int = 0
    inconclusive_inputs: int = 0
    reason: str = ""

    @property
    def is_correct(self) -> bool:
        return self.verdict == Verdict.CORRECT


@dataclass
class RefinementConfig:
    max_inputs: int = 48
    max_nondet_runs: int = 12
    pointer_block_size: int = 16
    limits: ExecutionLimits = field(default_factory=ExecutionLimits)
    seed: int = 0
    # Execute through compile-once plans (repro.tv.compile).  Off =
    # tree-walking ablation (--no-compiled-exec).  Deliberately NOT part
    # of cache_key(): both modes produce identical verdicts by contract
    # (locked by the differential suite), so cached results are shared.
    compiled: bool = True
    # Drive whole input sets through struct-of-arrays batched plan runs
    # (repro.tv.batch) instead of one scalar run per (input, path).  Off
    # = per-input ablation (--no-batched-exec).  Requires ``compiled``;
    # like it, deliberately NOT part of cache_key(): lane results are
    # bit-identical to scalar runs (locked by tests/test_batch_exec.py).
    batched: bool = True

    def cache_key(self) -> tuple:
        """A hashable key covering every knob a verdict depends on.

        Two :func:`check_refinement` calls with equal source/target
        fingerprints and equal cache keys produce the same
        :class:`TVResult`, which is what makes verify-verdict
        memoization sound (see :mod:`repro.fuzz.memo`).
        """
        return (
            self.max_inputs,
            self.max_nondet_runs,
            self.pointer_block_size,
            self.seed,
            self.limits.max_steps,
            self.limits.max_call_depth,
        )


# ---------------------------------------------------------------------------
# Preprocessing support check (paper §III-A).
# ---------------------------------------------------------------------------


def check_function_supported(function: Function) -> Optional[str]:
    """Why the validator cannot handle this function, or None if it can."""
    if function.function_type.is_vararg:
        return "vararg function"
    for argument in function.arguments:
        if not (argument.type.is_integer() or argument.type.is_pointer()):
            return f"unsupported parameter type {argument.type}"
        if argument.type.is_integer() and argument.type.width > 64:
            return "integer parameter wider than 64 bits"
    if not (
        function.return_type.is_void()
        or function.return_type.is_integer()
        or function.return_type.is_pointer()
    ):
        return f"unsupported return type {function.return_type}"
    for inst in function.instructions():
        if isinstance(inst, CallInst) and inst.callee.name.startswith("llvm."):
            if lookup_intrinsic(inst.callee.name) is None:
                return f"unknown intrinsic {inst.callee.name}"
    return None


# ---------------------------------------------------------------------------
# Input generation.
# ---------------------------------------------------------------------------


def generate_inputs(function: Function, config: RefinementConfig) -> List[TestInput]:
    """Concrete argument vectors: exhaustive when small, sampled otherwise."""
    rng = random.Random(config.seed ^ 0x5EED)
    pool = ConstantPool(function)
    per_arg: List[List[object]] = []
    for arg_index, argument in enumerate(function.arguments):
        if isinstance(argument.type, IntType):
            per_arg.append(_int_candidates(argument.type.width, pool, rng))
        elif argument.type.is_pointer():
            per_arg.append(_pointer_candidates(function, arg_index, config, rng))
        else:
            per_arg.append([0])

    if not per_arg:
        return [TestInput(())]

    total = 1
    for candidates in per_arg:
        total *= len(candidates)
    if total <= config.max_inputs:
        return [TestInput(tuple(combo)) for combo in itertools.product(*per_arg)]

    inputs: List[TestInput] = []
    seen = set()
    # Corner sweep: co-indexed walk ensures every candidate appears at
    # least once before random sampling fills the budget.
    longest = max(len(c) for c in per_arg)
    for i in range(min(longest, config.max_inputs // 2)):
        combo = tuple(candidates[i % len(candidates)] for candidates in per_arg)
        if combo not in seen:
            seen.add(combo)
            inputs.append(TestInput(combo))
    while len(inputs) < config.max_inputs:
        combo = tuple(rng.choice(candidates) for candidates in per_arg)
        if combo in seen:
            # Random duplicates are fine to skip; bail if space is tiny.
            if len(seen) >= total:
                break
            continue
        seen.add(combo)
        inputs.append(TestInput(combo))
    return inputs


# Generated inputs only depend on the function's structure (constant
# pool, widths, argument attributes), its argument names (pointer block
# ids are derived from them) and the config — so they are shared across
# the repeated check_refinement calls a campaign makes for one source
# function instead of rebuilding the ConstantPool every time.
_INPUT_CACHE = LRUCache(256)


def _inputs_for(function: Function, config: RefinementConfig) -> Tuple[TestInput, ...]:
    key = (
        fingerprint_function(function),
        tuple(argument.name for argument in function.arguments),
        config.cache_key(),
    )
    inputs = _INPUT_CACHE.get(key)
    if inputs is None:
        inputs = tuple(generate_inputs(function, config))
        _INPUT_CACHE.put(key, inputs)
    return inputs


def _int_candidates(width: int, pool: ConstantPool, rng: random.Random) -> List[int]:
    mask = (1 << width) - 1
    if width <= 4:
        return list(range(1 << width))
    values = list(interesting_values(width))
    for constant in pool.values_for_width(width)[:8]:
        for delta in (-1, 0, 1):
            values.append((constant + delta) & mask)
    for _ in range(6):
        values.append(rng.getrandbits(width))
    unique: List[int] = []
    seen = set()
    for value in values:
        value &= mask
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return unique


def _pointer_candidates(
    function: Function,
    arg_index: int,
    config: RefinementConfig,
    rng: random.Random,
) -> List[PointerInput]:
    argument = function.arguments[arg_index]
    size = config.pointer_block_size
    dereferenceable = argument.attributes.get_int("dereferenceable") or 0
    size = max(size, dereferenceable)
    arg_name = argument.name or str(arg_index)
    contents_a = tuple(rng.randrange(256) for _ in range(size))
    contents_b = tuple((7 * i + 3) & 0xFF for i in range(size))
    candidates = [
        PointerInput(f"arg:{arg_name}", size, contents_a),
        PointerInput(f"arg:{arg_name}", size, contents_b),
    ]
    # Aliasing: point at the block of an earlier pointer argument, which is
    # what load/store optimizations get wrong.
    for earlier_index in range(arg_index):
        earlier = function.arguments[earlier_index]
        if (
            earlier.type.is_pointer()
            and not argument.attributes.has("noalias")
            and not earlier.attributes.has("noalias")
        ):
            earlier_name = earlier.name or str(earlier_index)
            candidates.append(PointerInput(f"arg:{earlier_name}", 0, ()))
            break
    if not argument.attributes.has("nonnull") and not dereferenceable:
        candidates.append(PointerInput("", 0, ()))
    return candidates


# ---------------------------------------------------------------------------
# Execution → behavior sets.
# ---------------------------------------------------------------------------


def _prepare_input(function: Function, test_input: TestInput):
    """Lower one test input to (runtime args, memory blocks, observable).

    The result is reusable across runs and across both sides of a
    refinement check: ``blocks`` holds ``(id, size, contents)`` tuples
    that are re-added to the (reset) arena before every run, and the
    interpreter copies ``runtime_args`` before executing.
    """
    runtime_args: List[RuntimeValue] = []
    observable: List[str] = []
    blocks: List[Tuple[str, int, Tuple[int, ...]]] = []
    created = set()
    for argument, value in zip(function.arguments, test_input.args):
        if isinstance(value, PointerInput):
            if value.is_null():
                runtime_args.append(NULL_POINTER)
            else:
                if value.block not in created:
                    created.add(value.block)
                    blocks.append((value.block, value.size, value.contents))
                    observable.append(value.block)
                runtime_args.append(Pointer(value.block, 0))
        else:
            runtime_args.append(value)
    return runtime_args, blocks, observable


def _enumerate_outcomes(
    interpreter: Interpreter,
    function: Function,
    runtime_args,
    blocks,
    observable,
    config: RefinementConfig,
) -> Tuple[List[Outcome], bool]:
    """Walk the nondeterminism tree for one input, reusing ``interpreter``
    as the arena: each run resets it in place (fresh oracle, cleared
    memory and counters) instead of allocating a new interpreter+memory
    pair per path — the per-run allocations the old ``_materialize``
    paid on every single execution."""
    outcomes: List[Outcome] = []
    seen = set()
    path: Optional[List[int]] = []
    runs = 0
    exhausted = True
    while path is not None:
        if runs >= config.max_nondet_runs:
            exhausted = False
            break
        oracle = PathOracle(path)
        interpreter.reset(oracle)
        memory = interpreter.memory
        for block_id, size, contents in blocks:
            memory.add_block(block_id, size, list(contents))
        outcome = _run_once(interpreter, function, runtime_args, observable)
        runs += 1
        if oracle.domain_truncated:
            # Some choice domain was sampled (wide undef, frozen poison,
            # undef memory): the enumerated set under-approximates the
            # true behavior set even if the tree is fully walked.
            exhausted = False
        if outcome not in seen:
            seen.add(outcome)
            outcomes.append(outcome)
        path = advance_path(oracle.taken, oracle.domain_sizes)
    return outcomes, exhausted


def behavior_set(
    function: Function,
    test_input: TestInput,
    module: Module,
    config: RefinementConfig,
) -> Tuple[List[Outcome], bool]:
    """All observed outcomes for one input, plus an exhaustiveness flag."""
    interpreter = Interpreter(module, None, config.limits, compiled=config.compiled)
    runtime_args, blocks, observable = _prepare_input(function, test_input)
    return _enumerate_outcomes(
        interpreter, function, runtime_args, blocks, observable, config
    )


def _run_once(
    interpreter: Interpreter,
    function: Function,
    runtime_args,
    observable: List[str],
) -> Outcome:
    try:
        value = interpreter.run(function, runtime_args)
    except UBError as ub:
        return Outcome("ub", detail=ub.reason)
    except StepLimitExceeded:
        return Outcome("timeout")
    snapshot = interpreter.memory.snapshot(observable)
    memory = tuple(sorted(snapshot.items()))
    return Outcome("ok", value=value, memory=memory)


def _enumerate_all_batched(
    runner: BatchRunner,
    function: Function,
    program,
    prepared,
    config: RefinementConfig,
):
    """Batched analog of one ``_enumerate_outcomes`` call per input.

    Round ``r`` drives every still-pending input's ``r``-th
    nondeterminism path through a single struct-of-arrays plan walk
    (one lane per input).  Each lane keeps its own :class:`PathOracle`,
    so the per-input path tree, dedup order, run budget, and
    truncated-domain accounting replicate the scalar loop exactly —
    only the grouping of runs into plan walks changes.  Returns one
    ``(outcomes, exhausted)`` pair per input, in input order.
    """
    count = len(prepared)
    outcomes: List[List[Outcome]] = [[] for _ in range(count)]
    seen = [set() for _ in range(count)]
    exhausted = [True] * count
    if config.max_nondet_runs <= 0:
        # The scalar loop exhausts its budget before the first run.
        return [([], False) for _ in range(count)]
    paths: List[Optional[List[int]]] = [[] for _ in range(count)]
    runs = [0] * count
    pending = list(range(count))
    while pending:
        oracles = [PathOracle(paths[index]) for index in pending]
        lanes = [
            prepared[index] + (oracle,) for index, oracle in zip(pending, oracles)
        ]
        results = runner.run_batch(function, program, lanes)
        next_pending = []
        for position, input_index in enumerate(pending):
            status, value, memory, detail, _steps = results[position]
            outcome = Outcome(status, value=value, memory=memory, detail=detail)
            runs[input_index] += 1
            oracle = oracles[position]
            if oracle.domain_truncated:
                exhausted[input_index] = False
            if outcome not in seen[input_index]:
                seen[input_index].add(outcome)
                outcomes[input_index].append(outcome)
            path = advance_path(oracle.taken, oracle.domain_sizes)
            if path is None:
                continue
            if runs[input_index] >= config.max_nondet_runs:
                exhausted[input_index] = False
                continue
            paths[input_index] = path
            next_pending.append(input_index)
        pending = next_pending
    return list(zip(outcomes, exhausted))


# ---------------------------------------------------------------------------
# Refinement between outcomes.
# ---------------------------------------------------------------------------


def value_refines(tgt_value: object, src_value: object) -> bool:
    """May the target produce ``tgt_value`` where the source produced
    ``src_value``?  Poison in the source is refined by anything."""
    if src_value is POISON:
        return True
    if tgt_value is POISON:
        return False
    return tgt_value == src_value


def _byte_refines(tgt_byte: object, src_byte: object) -> bool:
    if src_byte is _POISON_BYTE or src_byte is UNDEF_BYTE:
        return True
    if tgt_byte is _POISON_BYTE or tgt_byte is UNDEF_BYTE:
        return False
    return tgt_byte == src_byte


def memory_refines(tgt_memory, src_memory) -> bool:
    src_blocks = dict(src_memory)
    for block_id, tgt_bytes in tgt_memory:
        src_bytes = src_blocks.get(block_id)
        if src_bytes is None or len(src_bytes) != len(tgt_bytes):
            return False
        for tgt_byte, src_byte in zip(tgt_bytes, src_bytes):
            if not _byte_refines(tgt_byte, src_byte):
                return False
    return True


def outcome_refines(tgt: Outcome, src: Outcome) -> bool:
    if src.is_ub():
        return True
    if tgt.is_ub():
        return False
    if src.is_timeout() or tgt.is_timeout():
        # Not comparable; handled by the caller as inconclusive.
        return False
    return value_refines(tgt.value, src.value) and memory_refines(
        tgt.memory, src.memory
    )


# ---------------------------------------------------------------------------
# Top-level checks.
# ---------------------------------------------------------------------------


def check_refinement(
    src_function: Function,
    tgt_function: Function,
    src_module: Optional[Module] = None,
    tgt_module: Optional[Module] = None,
    config: Optional[RefinementConfig] = None,
    tracer=None,
) -> TVResult:
    """Does ``tgt_function`` refine ``src_function``? (Bounded check.)

    ``tracer`` (a :class:`repro.obs.Tracer`) records one ``interp``
    span per test input — the interpreter-enumeration breakdown of the
    verify stage.  Disabled tracing costs one truthiness check per
    input.
    """
    config = config or RefinementConfig()
    src_module = src_module or src_function.parent
    tgt_module = tgt_module or tgt_function.parent
    traced = tracer is not None and tracer.enabled

    reason = check_function_supported(src_function)
    if reason is None:
        reason = check_function_supported(tgt_function)
    if reason is not None:
        return TVResult(Verdict.UNSUPPORTED, reason=reason)
    if len(src_function.arguments) != len(tgt_function.arguments):
        return TVResult(Verdict.UNSUPPORTED, reason="signature changed")

    inputs = _inputs_for(src_function, config)

    # One interpreter arena per side, reused across all inputs and
    # nondeterminism paths; plans for both functions are built up front
    # so every run after the first is pure replay.
    src_interp = Interpreter(src_module, None, config.limits, compiled=config.compiled)
    tgt_interp = Interpreter(tgt_module, None, config.limits, compiled=config.compiled)
    src_plan = src_interp.prepare(src_function)
    tgt_plan = tgt_interp.prepare(tgt_function)

    # Batched mode: whole input sets ride through one struct-of-arrays
    # plan walk per nondeterminism round instead of N scalar runs.  Any
    # side the batch compiler declines drops the whole check back to the
    # scalar path (verdicts are identical either way by contract).
    src_results = tgt_results = None
    if config.batched and config.compiled:
        src_program = batch_program_for(src_plan)
        tgt_program = batch_program_for(tgt_plan)
        if src_program is None or tgt_program is None:
            global_batch_stats().scalar_fallbacks += 1
        else:
            prepared = [
                _prepare_input(src_function, test_input) for test_input in inputs
            ]
            begin = time.perf_counter() if traced else 0.0
            src_runner = BatchRunner(src_module, config.limits)
            tgt_runner = BatchRunner(tgt_module, config.limits)
            src_results = _enumerate_all_batched(
                src_runner, src_function, src_program, prepared, config
            )
            tgt_results = _enumerate_all_batched(
                tgt_runner, tgt_function, tgt_program, prepared, config
            )
            if traced:
                tracer.record(
                    "interp",
                    begin,
                    time.perf_counter() - begin,
                    function=src_function.name,
                    inputs=len(inputs),
                    src_outcomes=sum(len(o) for o, _ in src_results),
                    tgt_outcomes=sum(len(o) for o, _ in tgt_results),
                )

    inconclusive = 0
    for input_index, test_input in enumerate(inputs):
        if src_results is not None:
            src_outcomes, src_exhausted = src_results[input_index]
            tgt_outcomes, _ = tgt_results[input_index]
        else:
            begin = time.perf_counter() if traced else 0.0
            # Arity matches (checked above) and the runtime values depend
            # only on the test input, so one prepared input serves both
            # sides.
            runtime_args, blocks, observable = _prepare_input(src_function, test_input)
            src_outcomes, src_exhausted = _enumerate_outcomes(
                src_interp, src_function, runtime_args, blocks, observable, config
            )
            tgt_outcomes, _ = _enumerate_outcomes(
                tgt_interp, tgt_function, runtime_args, blocks, observable, config
            )
            if traced:
                tracer.record(
                    "interp",
                    begin,
                    time.perf_counter() - begin,
                    function=src_function.name,
                    input=input_index,
                    src_outcomes=len(src_outcomes),
                    tgt_outcomes=len(tgt_outcomes),
                )

        if any(o.is_ub() for o in src_outcomes):
            # Some source nondeterminism hits UB; under the refinement
            # ordering anything is then allowed for choices we cannot
            # separate, so skip conservatively.
            continue
        if any(o.is_timeout() for o in src_outcomes + tgt_outcomes):
            inconclusive += 1
            continue
        for tgt_outcome in tgt_outcomes:
            if any(
                outcome_refines(tgt_outcome, src_outcome)
                for src_outcome in src_outcomes
            ):
                continue
            if not src_exhausted:
                inconclusive += 1
                continue
            counterexample = Counterexample(
                function_name=src_function.name,
                test_input=test_input,
                input_description=test_input.describe(src_function),
                src_outcomes=src_outcomes,
                tgt_outcome=tgt_outcome,
            )
            return TVResult(
                Verdict.UNSOUND,
                counterexample,
                inputs_checked=len(inputs),
                inconclusive_inputs=inconclusive,
            )
    # No definite violation; inconclusive inputs are recorded but do not
    # downgrade the verdict (bounded TV is inherently incomplete).
    return TVResult(
        Verdict.CORRECT,
        inputs_checked=len(inputs),
        inconclusive_inputs=inconclusive,
    )


def check_module_refinement(
    src_module: Module,
    tgt_module: Module,
    config: Optional[RefinementConfig] = None,
) -> Dict[str, TVResult]:
    """Pair functions by name and check each definition."""
    results: Dict[str, TVResult] = {}
    for src_function in src_module.definitions():
        tgt_function = tgt_module.get_function(src_function.name)
        if tgt_function is None or tgt_function.is_declaration():
            results[src_function.name] = TVResult(
                Verdict.UNSUPPORTED, reason="function missing in target"
            )
            continue
        results[src_function.name] = check_refinement(
            src_function, tgt_function, src_module, tgt_module, config
        )
    return results


def _describe_outcome(outcome: Outcome) -> str:
    if outcome.is_ub():
        return f"UB({outcome.detail})" if outcome.detail else "UB"
    if outcome.is_timeout():
        return "timeout"
    from .domain import describe

    text = describe(outcome.value)
    if outcome.memory:
        text += " with memory effects"
    return text
