"""Concrete interpreter with full poison/undef semantics.

This is the semantic core of the translation validator: it executes one
function on concrete inputs, tracking poison values, resolving undef and
frozen-poison through the nondeterminism oracle, modeling byte-granular
memory, and raising :class:`UBError` on undefined behavior.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryOperator,
    BrInst,
    CallInst,
    CastInst,
    FreezeInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiNode,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.types import IntType, Type
from ..ir.values import (
    ConstantInt,
    ConstantPointerNull,
    PoisonValue,
    UndefValue,
    Value,
)
from .domain import (
    NULL_POINTER,
    POISON,
    Pointer,
    RuntimeValue,
    choice_domain,
    fits_signed,
    interesting_values,
    is_poison,
    saturate,
    to_signed,
    to_unsigned,
    trunc_div,
)
from .memory import (
    Byte,
    Memory,
    MemoryFault,
    UNDEF_BYTE,
    byte_size_of_width,
    bytes_to_int,
    int_to_bytes,
)
from .oracle import DeterministicOracle, Oracle

POINTER_SIZE = 8

_MISSING = object()


class UBError(Exception):
    """Execution hit undefined behavior."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class StepLimitExceeded(Exception):
    """Execution exceeded the instruction budget (bounded TV timeout)."""


@dataclass
class ExecutionLimits:
    max_steps: int = 4096
    max_call_depth: int = 8


@lru_cache(maxsize=8192)
def block_address(block: str) -> int:
    """Deterministic numeric address for a logical block (same on both
    sides of a refinement check, so pointer ordering is comparable).

    Memoized: the hot loop recomputes addresses for the same handful of
    block ids on every pointer comparison, so the crc32 is paid once per
    id.  Bounded because ``raw:{N}`` ids are open-ended.
    """
    if block == "null":
        return 0
    return 0x10000 + (zlib.crc32(block.encode()) & 0xFFFF) * 64


def pointer_address(pointer: Pointer) -> int:
    return block_address(pointer.block) + pointer.offset


def byte_size_of_type(type: Type) -> int:
    if isinstance(type, IntType):
        return byte_size_of_width(type.width)
    if type.is_pointer():
        return POINTER_SIZE
    raise ValueError(f"no memory size for type {type}")


@dataclass
class _Frame:
    values: Dict[int, RuntimeValue] = field(default_factory=dict)

    def get(self, value: Value, interp: "Interpreter") -> RuntimeValue:
        return interp._evaluate_operand(value, self)

    def set(self, inst: Instruction, result: RuntimeValue) -> None:
        self.values[id(inst)] = result


class Interpreter:
    """Executes functions of one module under an oracle and step budget.

    ``compiled=True`` (the default) routes execution through per-function
    execution plans from :mod:`repro.tv.compile`: each function is lowered
    once into specialized closures over dense frame slots and the plan is
    replayed on every call, falling back to the tree-walking evaluator for
    anything the compiler declines.  Plans are shared through ``plans``
    (defaults to the process-wide cache) and pinned per interpreter in
    ``_plan_memo``, so functions must not be mutated between runs of the
    same interpreter.
    """

    def __init__(
        self,
        module,
        oracle: Optional[Oracle] = None,
        limits: Optional[ExecutionLimits] = None,
        *,
        compiled: bool = True,
        plans=None,
    ) -> None:
        self.module = module
        self.oracle = oracle or DeterministicOracle()
        self.limits = limits or ExecutionLimits()
        self.memory = Memory()
        self._steps = 0
        self._alloca_counter = 0
        self._call_counter = 0
        self._compiled = compiled
        self._plan_memo: Dict[int, object] = {}
        if compiled and plans is None:
            from .compile import global_plan_cache
            plans = global_plan_cache()
        self._plans = plans

    # -- entry point -----------------------------------------------------------

    def run(self, function: Function, args: Sequence[RuntimeValue]) -> RuntimeValue:
        """Execute ``function``; returns its value or raises UBError /
        StepLimitExceeded / MemoryFault-as-UB."""
        try:
            return self._call(function, list(args), depth=0)
        except MemoryFault as fault:
            raise UBError(str(fault)) from fault
        except (ZeroDivisionError, RecursionError) as exc:  # defensive
            raise UBError(str(exc)) from exc

    def reset(self, oracle: Optional[Oracle] = None) -> None:
        """Rewind this interpreter for a fresh run of the same module.

        Clears memory and the step/alloca/call counters exactly as a new
        instance would, but keeps the compiled execution plans — this is
        the arena the refinement checker reuses across inputs and
        nondeterminism paths instead of reallocating per run.
        """
        if oracle is not None:
            self.oracle = oracle
        self.memory.reset()
        self._steps = 0
        self._alloca_counter = 0
        self._call_counter = 0

    def prepare(self, function: Function):
        """Compile (or fetch from cache) ``function``'s execution plan now,
        so later runs pay no compilation cost.  Returns the plan, or None
        when compiled execution is off or the function is a declaration."""
        if not self._compiled or function.is_declaration():
            return None
        return self._plan_for(function)

    # -- function execution -------------------------------------------------------

    def _plan_for(self, function: Function):
        plan = self._plan_memo.get(id(function), _MISSING)
        if plan is _MISSING:
            # The memo keeps a reference to the plan, and the plan keeps
            # one to the function, so id() stays unique for our lifetime.
            plan = self._plans.plan_for(function)
            self._plan_memo[id(function)] = plan
        return plan

    def _call(
        self, function: Function, args: List[RuntimeValue], depth: int
    ) -> RuntimeValue:
        if depth > self.limits.max_call_depth:
            raise StepLimitExceeded("call depth exceeded")
        self._check_argument_attributes(function, args)
        if function.is_declaration():
            return self._call_external(function, args)
        if self._compiled:
            plan = self._plan_for(function)
            if plan is not None:
                return plan.execute(self, args, depth)
        return self._tree_call(function, args, depth)

    def _tree_call(
        self, function: Function, args: List[RuntimeValue], depth: int
    ) -> RuntimeValue:
        frame = _Frame()
        for argument, value in zip(function.arguments, args):
            frame.values[id(argument)] = value

        block = function.entry_block()
        previous_block: Optional[BasicBlock] = None
        while True:
            # Phis read their inputs atomically w.r.t. the edge taken.
            phi_results: List[Tuple[PhiNode, RuntimeValue]] = []
            for phi in block.phis():
                incoming = phi.incoming_value_for(previous_block)
                if incoming is None:
                    raise UBError("phi has no incoming value for edge")
                phi_results.append((phi, frame.get(incoming, self)))
            for phi, result in phi_results:
                frame.set(phi, result)

            for inst in block.instructions[block.first_non_phi_index():]:
                self._steps += 1
                if self._steps > self.limits.max_steps:
                    raise StepLimitExceeded("step limit exceeded")
                control = self._execute(inst, frame, depth)
                if control is None:
                    continue
                kind, payload = control
                if kind == "return":
                    return payload
                if kind == "branch":
                    previous_block = block
                    block = payload
                    break
            else:
                raise UBError("fell off the end of a block")

    # -- instruction dispatch -----------------------------------------------------

    def _execute(self, inst: Instruction, frame: _Frame, depth: int):
        if isinstance(inst, BinaryOperator):
            frame.set(inst, self._eval_binary(inst, frame))
            return None
        if isinstance(inst, ICmpInst):
            frame.set(inst, self._eval_icmp(inst, frame))
            return None
        if isinstance(inst, SelectInst):
            condition = frame.get(inst.condition, self)
            if is_poison(condition):
                frame.set(inst, POISON)
            elif condition == 1:
                frame.set(inst, frame.get(inst.true_value, self))
            else:
                frame.set(inst, frame.get(inst.false_value, self))
            return None
        if isinstance(inst, CastInst):
            frame.set(inst, self._eval_cast(inst, frame))
            return None
        if isinstance(inst, FreezeInst):
            value = frame.get(inst.value, self)
            if is_poison(value):
                # freeze of poison picks an arbitrary-but-fixed value,
                # resolved through the nondeterminism oracle like undef.
                value = self._choose_value(inst.type, f"freeze:{id(inst)}")
            frame.set(inst, value)
            return None
        if isinstance(inst, AllocaInst):
            self._alloca_counter += 1
            block_id = f"alloca:{self._alloca_counter}"
            pointer = self.memory.add_block(
                block_id, byte_size_of_type(inst.allocated_type)
            )
            frame.set(inst, pointer)
            return None
        if isinstance(inst, LoadInst):
            frame.set(inst, self._eval_load(inst, frame))
            return None
        if isinstance(inst, StoreInst):
            self._eval_store(inst, frame)
            return None
        if isinstance(inst, GEPInst):
            frame.set(inst, self._eval_gep(inst, frame))
            return None
        if isinstance(inst, CallInst):
            result = self._eval_call(inst, frame, depth)
            if not inst.type.is_void():
                frame.set(inst, result)
            return None
        if isinstance(inst, RetInst):
            if inst.return_value is None:
                return ("return", None)
            return ("return", frame.get(inst.return_value, self))
        if isinstance(inst, BrInst):
            if not inst.is_conditional():
                return ("branch", inst.operands[0])
            condition = frame.get(inst.condition, self)
            if is_poison(condition):
                raise UBError("branch on poison")
            taken = inst.operands[1] if condition == 1 else inst.operands[2]
            return ("branch", taken)
        if isinstance(inst, SwitchInst):
            value = frame.get(inst.value, self)
            if is_poison(value):
                raise UBError("switch on poison")
            for case_value, case_block in inst.cases():
                if case_value.value == value:
                    return ("branch", case_block)
            return ("branch", inst.default)
        if isinstance(inst, UnreachableInst):
            raise UBError("reached unreachable")
        raise UBError(f"unsupported instruction {inst.opcode}")

    # -- operands ---------------------------------------------------------------

    def _evaluate_operand(self, value: Value, frame: _Frame) -> RuntimeValue:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, PoisonValue):
            return POISON
        if isinstance(value, UndefValue):
            # Each use of undef is an independent choice.
            return self._choose_value(value.type, f"undef:{id(value)}")
        if isinstance(value, ConstantPointerNull):
            return NULL_POINTER
        if isinstance(value, Function):
            return Pointer(f"func:{value.name}", 0)
        stored = frame.values.get(id(value))
        if stored is None and id(value) not in frame.values:
            raise UBError(f"use of unevaluated value %{value.name or '?'}")
        return stored

    def _choose_value(self, type: Type, label: str) -> RuntimeValue:
        if isinstance(type, IntType):
            if type.width <= 3:
                options: Sequence = choice_domain(type.width)
            else:
                # A sample, not the full 2**width domain: tell the oracle
                # so the refinement checker treats the source's behavior
                # set as under-approximated.
                options = interesting_values(type.width)
                self._note_truncated_domain()
            return self.oracle.choose(label, options)
        if type.is_pointer():
            self._note_truncated_domain()
            return self.oracle.choose(label, [NULL_POINTER])
        raise UBError(f"cannot choose a value of type {type}")

    def _note_truncated_domain(self) -> None:
        note = getattr(self.oracle, "note_truncated_domain", None)
        if note is not None:
            note()

    # -- arithmetic ----------------------------------------------------------------

    def _eval_binary(self, inst: BinaryOperator, frame: _Frame) -> RuntimeValue:
        lhs = frame.get(inst.lhs, self)
        rhs = frame.get(inst.rhs, self)
        width = inst.type.width
        opcode = inst.opcode

        # Division by zero is immediate UB even with poison on the other
        # side, so check divisors first.
        if opcode in ("udiv", "sdiv", "urem", "srem"):
            if is_poison(rhs):
                raise UBError(f"{opcode} by poison divisor")
            if rhs == 0:
                raise UBError(f"{opcode} by zero")
        if is_poison(lhs) or is_poison(rhs):
            return POISON

        mask = (1 << width) - 1
        if opcode == "add":
            result = (lhs + rhs) & mask
            if inst.nuw and lhs + rhs > mask:
                return POISON
            if inst.nsw and not fits_signed(
                to_signed(lhs, width) + to_signed(rhs, width), width
            ):
                return POISON
            return result
        if opcode == "sub":
            result = (lhs - rhs) & mask
            if inst.nuw and lhs - rhs < 0:
                return POISON
            if inst.nsw and not fits_signed(
                to_signed(lhs, width) - to_signed(rhs, width), width
            ):
                return POISON
            return result
        if opcode == "mul":
            result = (lhs * rhs) & mask
            if inst.nuw and lhs * rhs > mask:
                return POISON
            if inst.nsw and not fits_signed(
                to_signed(lhs, width) * to_signed(rhs, width), width
            ):
                return POISON
            return result
        if opcode == "udiv":
            result = lhs // rhs
            if inst.exact and lhs % rhs != 0:
                return POISON
            return result
        if opcode == "sdiv":
            signed_lhs = to_signed(lhs, width)
            signed_rhs = to_signed(rhs, width)
            if signed_lhs == -(1 << (width - 1)) and signed_rhs == -1:
                raise UBError("sdiv overflow")
            quotient = trunc_div(signed_lhs, signed_rhs)
            if inst.exact and signed_lhs - quotient * signed_rhs != 0:
                return POISON
            return to_unsigned(quotient, width)
        if opcode == "urem":
            return lhs % rhs
        if opcode == "srem":
            signed_lhs = to_signed(lhs, width)
            signed_rhs = to_signed(rhs, width)
            if signed_lhs == -(1 << (width - 1)) and signed_rhs == -1:
                raise UBError("srem overflow")
            remainder = signed_lhs - trunc_div(signed_lhs, signed_rhs) * signed_rhs
            return to_unsigned(remainder, width)
        if opcode in ("shl", "lshr", "ashr"):
            if rhs >= width:
                return POISON
            if opcode == "shl":
                full = lhs << rhs
                result = full & mask
                if inst.nuw and full > mask:
                    return POISON
                shifted = to_signed(lhs, width) * (1 << rhs)
                if inst.nsw and to_signed(result, width) != shifted:
                    return POISON
                return result
            if opcode == "lshr":
                if inst.exact and lhs & ((1 << rhs) - 1):
                    return POISON
                return lhs >> rhs
            # ashr
            if inst.exact and lhs & ((1 << rhs) - 1):
                return POISON
            return to_unsigned(to_signed(lhs, width) >> rhs, width)
        if opcode == "and":
            return lhs & rhs
        if opcode == "or":
            return lhs | rhs
        if opcode == "xor":
            return lhs ^ rhs
        raise UBError(f"unsupported binary opcode {opcode}")

    def _eval_icmp(self, inst: ICmpInst, frame: _Frame) -> RuntimeValue:
        lhs = frame.get(inst.lhs, self)
        rhs = frame.get(inst.rhs, self)
        if is_poison(lhs) or is_poison(rhs):
            return POISON
        if isinstance(lhs, Pointer) or isinstance(rhs, Pointer):
            lhs_num = pointer_address(lhs) if isinstance(lhs, Pointer) else lhs
            rhs_num = pointer_address(rhs) if isinstance(rhs, Pointer) else rhs
            width = 64
        else:
            lhs_num, rhs_num = lhs, rhs
            width = inst.lhs.type.width
        predicate = inst.predicate
        if predicate in ("sgt", "sge", "slt", "sle"):
            lhs_num = to_signed(lhs_num, width)
            rhs_num = to_signed(rhs_num, width)
        result = {
            "eq": lhs_num == rhs_num,
            "ne": lhs_num != rhs_num,
            "ugt": lhs_num > rhs_num,
            "uge": lhs_num >= rhs_num,
            "ult": lhs_num < rhs_num,
            "ule": lhs_num <= rhs_num,
            "sgt": lhs_num > rhs_num,
            "sge": lhs_num >= rhs_num,
            "slt": lhs_num < rhs_num,
            "sle": lhs_num <= rhs_num,
        }[predicate]
        return int(result)

    def _eval_cast(self, inst: CastInst, frame: _Frame) -> RuntimeValue:
        value = frame.get(inst.value, self)
        if is_poison(value):
            return POISON
        src_width = inst.src_type.width
        dst_width = inst.type.width
        if inst.opcode == "trunc":
            return value & ((1 << dst_width) - 1)
        if inst.opcode == "zext":
            return value
        if inst.opcode == "sext":
            return to_unsigned(to_signed(value, src_width), dst_width)
        raise UBError(f"unsupported cast {inst.opcode}")

    # -- memory ---------------------------------------------------------------------

    def _eval_load(self, inst: LoadInst, frame: _Frame) -> RuntimeValue:
        pointer = frame.get(inst.pointer, self)
        if is_poison(pointer):
            raise UBError("load from poison pointer")
        if not isinstance(pointer, Pointer):
            raise UBError("load from non-pointer value")
        size = byte_size_of_type(inst.type)
        data = self.memory.load_bytes(pointer, size)
        if inst.type.is_pointer():
            return self._bytes_to_pointer(data, f"load:{id(inst)}")
        if any(b is POISON for b in data):
            return POISON
        concrete: List[int] = []
        for i, byte in enumerate(data):
            if byte is UNDEF_BYTE:
                self._note_truncated_domain()
                concrete.append(
                    self.oracle.choose(f"loadundef:{id(inst)}:{i}", [0, 0xFF, 0x5A])
                )
            elif isinstance(byte, tuple):  # pointer byte read as integer
                concrete.append(self._pointer_byte_as_int(byte))
            else:
                concrete.append(byte)
        width = inst.type.width
        return bytes_to_int(concrete) & ((1 << width) - 1)

    def _eval_store(self, inst: StoreInst, frame: _Frame) -> None:
        pointer = frame.get(inst.pointer, self)
        if is_poison(pointer):
            raise UBError("store to poison pointer")
        if not isinstance(pointer, Pointer):
            raise UBError("store to non-pointer value")
        value = frame.get(inst.value, self)
        size = byte_size_of_type(inst.value.type)
        if is_poison(value):
            data: List[Byte] = [POISON] * size
        elif isinstance(value, Pointer):
            data = [("ptr", value.block, value.offset, i) for i in range(size)]
        else:
            data = int_to_bytes(value, size)
        self.memory.store_bytes(pointer, data)

    def _eval_gep(self, inst: GEPInst, frame: _Frame) -> RuntimeValue:
        pointer = frame.get(inst.pointer, self)
        if is_poison(pointer):
            return POISON
        if not isinstance(pointer, Pointer):
            raise UBError("gep on non-pointer value")
        element_size = byte_size_of_type(inst.source_type)
        offset = pointer.offset
        for index in inst.indices:
            index_value = frame.get(index, self)
            if is_poison(index_value):
                return POISON
            offset += to_signed(index_value, index.type.width) * element_size
        result = Pointer(pointer.block, offset)
        if inst.inbounds and not pointer.is_null():
            if not self.memory.has_block(pointer.block):
                return result
            size = self.memory.block_size(pointer.block)
            if offset < 0 or offset > size:
                return POISON
        return result

    def _bytes_to_pointer(self, data: List[Byte], label: str) -> RuntimeValue:
        if any(b is POISON for b in data):
            return POISON
        first = data[0]
        if isinstance(first, tuple) and first[0] == "ptr":
            _, block, offset, start = first
            consistent = all(
                isinstance(b, tuple)
                and b[0] == "ptr"
                and b[1] == block
                and b[2] == offset
                and b[3] == start + i
                for i, b in enumerate(data)
            )
            if consistent and start == 0:
                return Pointer(block, offset)
        if all(isinstance(b, int) for b in data):
            raw = bytes_to_int([b for b in data])
            if raw == 0:
                return NULL_POINTER
            return Pointer(f"raw:{raw}", 0)
        # Mixed/undef bytes: unusable pointer.
        return Pointer("invalid", 0)

    def _pointer_byte_as_int(self, byte: tuple) -> int:
        _, block, offset, index = byte
        address = block_address(block) + offset
        return (address >> (8 * index)) & 0xFF

    # -- calls -----------------------------------------------------------------------

    def _check_argument_attributes(
        self, function: Function, args: List[RuntimeValue]
    ) -> None:
        for argument, value in zip(function.arguments, args):
            if argument.attributes.has("noundef") and is_poison(value):
                raise UBError(f"poison passed to noundef arg %{argument.name}")
            dereferenceable = argument.attributes.get_int("dereferenceable")
            if dereferenceable and isinstance(value, Pointer):
                if value.is_null() or not self.memory.has_block(value.block):
                    raise UBError(
                        "non-dereferenceable pointer passed to "
                        f"dereferenceable({dereferenceable}) arg"
                    )
                available = self.memory.block_size(value.block) - value.offset
                if available < dereferenceable:
                    raise UBError(
                        f"pointer does not cover dereferenceable({dereferenceable})"
                    )

    def _eval_call(self, inst: CallInst, frame: _Frame, depth: int) -> RuntimeValue:
        callee = inst.callee
        args = [frame.get(a, self) for a in inst.args]
        if callee.name.startswith("llvm."):
            return self._eval_intrinsic(inst, callee.name, args, frame)
        # nonnull on the callee's parameters: violating it yields poison
        # (or UB when combined with noundef).
        for index, (argument, value) in enumerate(zip(callee.arguments, args)):
            if (
                argument.attributes.has("nonnull")
                and isinstance(value, Pointer)
                and value.is_null()
            ):
                if argument.attributes.has("noundef"):
                    raise UBError("null passed to nonnull noundef argument")
                args[index] = POISON
        return self._call(callee, args, depth + 1)

    def _eval_intrinsic(
        self, inst: CallInst, name: str, args: List[RuntimeValue], frame: _Frame
    ) -> RuntimeValue:
        base = inst.intrinsic_name()
        if base == "llvm.assume":
            condition = args[0]
            if is_poison(condition):
                raise UBError("assume of poison")
            if condition != 1:
                raise UBError("assume of false")
            self._check_assume_bundles(inst, frame)
            return None
        width = inst.type.width if isinstance(inst.type, IntType) else 0
        if any(is_poison(a) for a in args):
            return POISON
        mask = (1 << width) - 1 if width else 0
        return evaluate_intrinsic(base, name, width, mask, args)

    def _check_assume_bundles(self, inst: CallInst, frame: _Frame) -> None:
        for bundle in inst.bundles:
            operands = [frame.get(v, self) for v in inst.bundle_operands(bundle)]
            if bundle.tag == "align" and len(operands) == 2:
                pointer, align = operands
                if is_poison(pointer) or is_poison(align):
                    raise UBError("assume align on poison")
                if isinstance(pointer, Pointer) and align:
                    if pointer_address(pointer) % align != 0:
                        raise UBError("assume align violated")
            elif bundle.tag == "nonnull" and operands:
                pointer = operands[0]
                if isinstance(pointer, Pointer) and pointer.is_null():
                    raise UBError("assume nonnull violated")

    # -- external (opaque) functions -----------------------------------------------

    def _call_external(
        self, function: Function, args: List[RuntimeValue]
    ) -> RuntimeValue:
        """Deterministic model of an unknown external function.

        The function's behavior is a pure function of its name, the call
        sequence number (unless readnone/readonly), its arguments, and the
        bytes its pointer arguments point to.  Because it is deterministic,
        matching call sequences in source and target produce matching
        effects — while any illegal reordering, duplication, or removal by
        the optimizer perturbs downstream state and is caught.
        """
        readnone = function.attributes.has("readnone")
        readonly = function.attributes.has("readonly")
        seed_parts = [function.name]
        if not (readnone or readonly):
            self._call_counter += 1
            seed_parts.append(str(self._call_counter))
        pointer_args: List[Pointer] = []
        for value in args:
            if is_poison(value):
                seed_parts.append("poison")
            elif isinstance(value, Pointer):
                seed_parts.append(f"{value.block}+{value.offset}")
                if not value.is_null() and self.memory.has_block(value.block):
                    pointer_args.append(value)
            else:
                seed_parts.append(str(value))
        if not readnone:
            for pointer in pointer_args:
                data = self.memory.observable_digest(pointer.block)
                seed_parts.append(_digest_bytes(data))
        seed = zlib.crc32("|".join(seed_parts).encode())

        if not (readnone or readonly):
            # Clobber memory reachable through pointer args deterministically.
            for pointer in pointer_args:
                size = self.memory.block_size(pointer.block)
                new_bytes = [
                    (seed + 31 * i + zlib.crc32(pointer.block.encode())) & 0xFF
                    for i in range(size)
                ]
                self.memory.fill(pointer.block, new_bytes)

        return_type = function.return_type
        if return_type.is_void():
            return None
        if isinstance(return_type, IntType):
            return seed & ((1 << return_type.width) - 1)
        if return_type.is_pointer():
            return NULL_POINTER
        raise UBError(f"external function returning {return_type}")


def evaluate_intrinsic(
    base: str, name: str, width: int, mask: int, args: List[RuntimeValue]
) -> RuntimeValue:
    """Pure evaluation of a (non-assume) intrinsic on poison-free args.

    Shared between the tree-walking evaluator and compiled execution
    plans so the two modes cannot drift.
    """
    if base in ("llvm.smax", "llvm.smin"):
        lhs = to_signed(args[0], width)
        rhs = to_signed(args[1], width)
        chosen = max(lhs, rhs) if base.endswith("smax") else min(lhs, rhs)
        return to_unsigned(chosen, width)
    if base in ("llvm.umax", "llvm.umin"):
        return max(args[0], args[1]) if base.endswith("umax") else min(args[0], args[1])
    if base == "llvm.abs":
        value = to_signed(args[0], width)
        if value == -(1 << (width - 1)):
            if args[1] == 1:
                return POISON
            return to_unsigned(value, width)
        return abs(value)
    if base == "llvm.ctpop":
        return bin(args[0]).count("1")
    if base == "llvm.ctlz":
        if args[0] == 0:
            return POISON if args[1] == 1 else width
        return width - args[0].bit_length()
    if base == "llvm.cttz":
        if args[0] == 0:
            return POISON if args[1] == 1 else width
        return (args[0] & -args[0]).bit_length() - 1
    if base == "llvm.bswap":
        size = width // 8
        data = int_to_bytes(args[0], size)
        return bytes_to_int(list(reversed(data)))
    if base == "llvm.bitreverse":
        return int(format(args[0], f"0{width}b")[::-1], 2)
    if base == "llvm.sadd.sat":
        total = to_signed(args[0], width) + to_signed(args[1], width)
        return saturate(total, width, signed=True)
    if base == "llvm.ssub.sat":
        total = to_signed(args[0], width) - to_signed(args[1], width)
        return saturate(total, width, signed=True)
    if base == "llvm.uadd.sat":
        return saturate(args[0] + args[1], width, signed=False)
    if base == "llvm.usub.sat":
        return saturate(args[0] - args[1], width, signed=False)
    if base in ("llvm.fshl", "llvm.fshr"):
        amount = args[2] % width
        concat = (args[0] << width) | args[1]
        if base.endswith("fshl"):
            return (concat >> (width - amount)) & mask if amount else args[0]
        return (concat >> amount) & mask if amount else args[1]
    if base == "llvm.umul.with.overflow.bit":
        return int(args[0] * args[1] > mask)
    raise UBError(f"unsupported intrinsic {name}")


def _digest_bytes(data) -> str:
    parts = []
    for byte in data:
        if isinstance(byte, int):
            parts.append(f"{byte:02x}")
        else:
            parts.append("??")
    return "".join(parts)
