"""Translation validation: bounded refinement checking for the IR.

The public API mirrors how the paper uses Alive2: check one function pair
(:func:`check_refinement`) or a whole module pair
(:func:`check_module_refinement`), and use
:func:`check_function_supported` during preprocessing to drop functions
the validator cannot handle (paper §III-A).
"""

from .batch import (
    BatchProgram,
    BatchRunner,
    BatchStats,
    batch_program_for,
    compile_batch_program,
    global_batch_stats,
    reset_global_batch_stats,
)
from .compile import (
    ExecutionPlan,
    PlanCache,
    compile_function,
    global_plan_cache,
    reset_global_plan_cache,
)
from .domain import NULL_POINTER, POISON, Pointer, RuntimeValue, is_poison
from .interp import ExecutionLimits, Interpreter, StepLimitExceeded, UBError
from .memory import Memory, MemoryFault, UNDEF_BYTE
from .oracle import DeterministicOracle, Oracle, PathOracle
from .refine import (
    Counterexample,
    Outcome,
    RefinementConfig,
    TestInput,
    TVResult,
    Verdict,
    behavior_set,
    check_function_supported,
    check_module_refinement,
    check_refinement,
    generate_inputs,
    outcome_refines,
    value_refines,
)

__all__ = [
    "NULL_POINTER",
    "POISON",
    "Pointer",
    "RuntimeValue",
    "is_poison",
    "BatchProgram",
    "BatchRunner",
    "BatchStats",
    "batch_program_for",
    "compile_batch_program",
    "global_batch_stats",
    "reset_global_batch_stats",
    "ExecutionLimits",
    "ExecutionPlan",
    "Interpreter",
    "PlanCache",
    "StepLimitExceeded",
    "UBError",
    "Memory",
    "MemoryFault",
    "UNDEF_BYTE",
    "DeterministicOracle",
    "Oracle",
    "PathOracle",
    "Counterexample",
    "Outcome",
    "RefinementConfig",
    "TestInput",
    "TVResult",
    "Verdict",
    "behavior_set",
    "check_function_supported",
    "check_module_refinement",
    "check_refinement",
    "compile_function",
    "generate_inputs",
    "global_plan_cache",
    "outcome_refines",
    "reset_global_plan_cache",
    "value_refines",
]
