"""Byte-granular memory model.

Each logical block holds bytes that are either concrete ints in
``[0, 256)``, ``POISON``, or ``UNDEF_BYTE`` (uninitialized).  Integer
loads/stores are little-endian.  Out-of-bounds or null accesses raise
:class:`MemoryFault`, which the interpreter converts to UB.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .domain import POISON as POISON  # re-exported: the byte-level poison marker
from .domain import Pointer, _Poison


class _UndefByte:
    _instance: "_UndefByte" = None

    def __new__(cls) -> "_UndefByte":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undef"


UNDEF_BYTE = _UndefByte()

Byte = Union[int, _Poison, _UndefByte]


class MemoryFault(Exception):
    """An access outside any live block (== immediate UB)."""


class Memory:
    """All memory blocks of one execution."""

    def __init__(self) -> None:
        self._blocks: Dict[str, List[Byte]] = {}

    def reset(self) -> None:
        """Drop every block, returning to the freshly-constructed state.

        Used by :meth:`Interpreter.reset` so one memory arena serves many
        runs instead of allocating a new ``Memory`` per execution.
        """
        self._blocks.clear()

    def add_block(
        self, block_id: str, size: int, initial: Optional[List[int]] = None
    ) -> Pointer:
        if block_id in self._blocks:
            raise ValueError(f"duplicate block {block_id}")
        if initial is not None:
            if len(initial) != size:
                raise ValueError("initial contents size mismatch")
            contents: List[Byte] = list(initial)
        else:
            contents = [UNDEF_BYTE] * size
        self._blocks[block_id] = contents
        return Pointer(block_id, 0)

    def has_block(self, block_id: str) -> bool:
        return block_id in self._blocks

    def block_size(self, block_id: str) -> int:
        return len(self._blocks[block_id])

    def _slot(self, pointer: Pointer, size: int) -> Tuple[List[Byte], int]:
        if pointer.is_null():
            raise MemoryFault("access through null pointer")
        block = self._blocks.get(pointer.block)
        if block is None:
            raise MemoryFault(f"access to dead block {pointer.block}")
        if pointer.offset < 0 or pointer.offset + size > len(block):
            raise MemoryFault(f"out-of-bounds access at {pointer!r} size {size}")
        return block, pointer.offset

    def load_bytes(self, pointer: Pointer, size: int) -> List[Byte]:
        block, offset = self._slot(pointer, size)
        return block[offset:offset + size]

    def store_bytes(self, pointer: Pointer, data: List[Byte]) -> None:
        block, offset = self._slot(pointer, size=len(data))
        block[offset:offset + len(data)] = data

    def fill(self, block_id: str, data: List[int]) -> None:
        """Overwrite a whole block with concrete bytes."""
        block = self._blocks[block_id]
        if len(data) != len(block):
            raise ValueError("fill size mismatch")
        block[:] = list(data)

    def snapshot(self, block_ids) -> Dict[str, Tuple[Byte, ...]]:
        """Immutable copy of selected blocks (for refinement comparison)."""
        return {
            block_id: tuple(self._blocks[block_id])
            for block_id in block_ids
            if block_id in self._blocks
        }

    def observable_digest(self, block_id: str) -> Tuple[Byte, ...]:
        return tuple(self._blocks[block_id])

    def block_ids(self) -> List[str]:
        return list(self._blocks)


def int_to_bytes(value: int, size: int) -> List[int]:
    return [(value >> (8 * i)) & 0xFF for i in range(size)]


def bytes_to_int(data: List[int]) -> int:
    value = 0
    for i, byte in enumerate(data):
        value |= byte << (8 * i)
    return value


def byte_size_of_width(width: int) -> int:
    """Bytes occupied by an iN value in memory (padded to whole bytes)."""
    return (width + 7) // 8
