"""Runtime value domain for the translation-validation interpreter.

Runtime values are plain Python data:

* integers — canonical unsigned ints in ``[0, 2**width)``
* pointers — :class:`Pointer` (logical block id + byte offset), or null
* ``POISON`` — the poison marker
* ``None`` — the absence of a value (void)

``undef`` never exists at runtime: each *use* of an undef operand is
resolved to a concrete value through the nondeterminism oracle, which
matches LLVM's each-use-may-differ semantics under bounded enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple, Union


class _Poison:
    """Singleton marker for a poisonous runtime value."""

    _instance: "_Poison" = None

    def __new__(cls) -> "_Poison":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "poison"


POISON = _Poison()


@dataclass(frozen=True)
class Pointer:
    """A pointer into a logical memory block.

    ``block`` is a logical id stable across source/target executions
    (e.g. ``"arg:p"`` or ``"alloca:3"``), so pointers can be compared
    between the two runs.  The null pointer is ``Pointer("null", 0)``.
    """

    block: str
    offset: int

    def is_null(self) -> bool:
        return self.block == "null"

    def __repr__(self) -> str:
        return f"&{self.block}+{self.offset}"


NULL_POINTER = Pointer("null", 0)

RuntimeValue = Union[int, Pointer, _Poison, None]


def is_poison(value: RuntimeValue) -> bool:
    return value is POISON


def to_signed(value: int, width: int) -> int:
    value &= (1 << width) - 1
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


@lru_cache(maxsize=256)
def interesting_values(width: int) -> Tuple[int, ...]:
    """Corner values used both for input generation and undef choices.

    Cached per width: the interpreter asks for the same few widths on
    every undef/freeze choice, so the tuple is built once and shared
    (callers must treat it as immutable — copy before mutating).
    """
    mask = (1 << width) - 1
    values = [0, 1, mask]
    if width > 1:
        values.extend([
            1 << (width - 1),          # signed minimum
            (1 << (width - 1)) - 1,    # signed maximum
            2 & mask,
        ])
    seen = set()
    unique = []
    for value in values:
        value &= mask
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return tuple(unique)


@lru_cache(maxsize=256)
def choice_domain(width: int) -> Tuple[int, ...]:
    """The full value domain for a narrow integer type (width <= 3)."""
    return tuple(range(1 << width))


def fits_signed(value: int, width: int) -> bool:
    return -(1 << (width - 1)) <= value <= (1 << (width - 1)) - 1


def trunc_div(lhs: int, rhs: int) -> int:
    """C-style division: truncate toward zero (Python // floors)."""
    quotient = abs(lhs) // abs(rhs)
    if (lhs < 0) != (rhs < 0):
        quotient = -quotient
    return quotient


def saturate(value: int, width: int, signed: bool) -> int:
    if signed:
        low, high = -(1 << (width - 1)), (1 << (width - 1)) - 1
    else:
        low, high = 0, (1 << width) - 1
    return to_unsigned(max(low, min(high, value)), width)


def describe(value: RuntimeValue, width: Optional[int] = None) -> str:
    """Human-readable form for counterexample reports."""
    if value is POISON:
        return "poison"
    if value is None:
        return "void"
    if isinstance(value, Pointer):
        return repr(value)
    if width is not None:
        signed = to_signed(value, width)
        if signed != value:
            return f"{value} (i.e. {signed})"
    return str(value)
