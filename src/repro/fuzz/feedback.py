"""Coverage feedback: what the optimizer did with one mutant.

The paper's loop is feedback-blind — every mutant is drawn uniformly and
thrown away after verification.  This module defines the cheap structural
signal that makes the loop coverage-guided, the analog of IRFuzzer's
matcher-table coverage: :mod:`repro.opt` already counts every rewrite
rule that fires and every pass that changes a function into
``OptContext.stats`` (``instcombine.rule.<name>``, ``pass.<name>.changed``,
``gvn.cse``, ...), so the *feature set* of a run is simply the set of
counter keys it produced, plus one ``bug:<id>`` feature per seeded-bug
path it executed.  Collecting it costs nothing the optimizer was not
already paying.

* :class:`FeedbackMap` — the per-run map of feature → fire count;
* :class:`Feedback` — one iteration's feedback verdict as exposed on
  :attr:`FuzzDriver.last_feedback`: the features reached, which were
  novel, and whether the mutant entered the corpus;
* :class:`FeedbackConfig` — the single sub-config `FuzzConfig` and
  `CampaignConfig` take (``feedback=FeedbackConfig(enabled=True, ...)``);
* :class:`FeedbackStats` — aggregated corpus/coverage totals reported as
  first-class fields on fuzz, session, and campaign reports.

The feature space is memo-invariant by construction: optimize-cache hits
replay the stored per-function stats (see
:class:`repro.fuzz.memo.OptimizeEntry`), and crash iterations contribute
only their ``bug:<id>`` feature, which pass-major and function-major
execution agree on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

__all__ = ["Feedback", "FeedbackConfig", "FeedbackMap", "FeedbackStats",
           "bug_feature"]

#: The prefix marking a seeded-bug-path feature (``bug:<issue id>``).
BUG_FEATURE_PREFIX = "bug:"

#: Scheduler names :class:`FeedbackConfig` accepts (see
#: :mod:`repro.fuzz.schedule`).
SCHEDULERS = ("bandit", "round-robin")


def bug_feature(bug_id: str) -> str:
    """The feature key for one executed seeded-bug path."""
    return BUG_FEATURE_PREFIX + bug_id


class FeedbackMap:
    """Per-run feedback: feature keys → fire counts.

    A thin, mergeable wrapper over a :class:`collections.Counter` whose
    keys are optimizer stat names and ``bug:<id>`` markers.  The *count*
    is informational (how hard a rule fired); admission and scheduling
    decisions use only the key set, so a rule firing 3 vs 30 times is
    the same feature.
    """

    def __init__(self, counts: Optional[Mapping[str, int]] = None) -> None:
        self.counts: Counter = Counter()
        if counts:
            self.counts.update(counts)

    def add_stats(self, stats: Mapping[str, int]) -> None:
        self.counts.update(stats)

    def add_bugs(self, bug_ids: Iterable[str]) -> None:
        for bug_id in bug_ids:
            self.counts[bug_feature(bug_id)] += 1

    def merge(self, other: "FeedbackMap") -> None:
        self.counts.update(other.counts)

    def features(self) -> FrozenSet[str]:
        return frozenset(self.counts)

    def __len__(self) -> int:
        return len(self.counts)

    def __bool__(self) -> bool:
        return bool(self.counts)

    def __repr__(self) -> str:
        return f"FeedbackMap({len(self.counts)} features)"


@dataclass(frozen=True)
class Feedback:
    """One iteration's feedback verdict (``FuzzDriver.last_feedback``).

    ``source`` is the mutation source the iteration drew from (``"seed"``
    or a corpus-entry fingerprint) and ``operator`` the mutation class —
    empty when scheduling is off.  ``counts`` keeps the fire counts for
    the curious; equality/novelty semantics live in the feature sets.
    """

    features: FrozenSet[str]
    new_features: FrozenSet[str]
    admitted: bool = False
    source: str = "seed"
    operator: str = ""
    counts: Mapping[str, int] = field(default_factory=dict)

    @property
    def novel(self) -> bool:
        return bool(self.new_features)


@dataclass
class FeedbackConfig:
    """The single knob block for coverage-guided fuzzing.

    ``scheduler=None`` means "the default scheduler when feedback is
    enabled" (the deterministic UCB1 bandit); naming one explicitly
    while ``enabled`` is False is rejected by :meth:`validate` — as is a
    ``corpus_dir`` without feedback — so a config cannot silently claim
    guidance it is not getting.
    """

    enabled: bool = False
    # Directory for the per-driver corpus journal (None = in-memory only).
    corpus_dir: Optional[str] = None
    # "bandit" (default) or "round-robin"; None = default when enabled.
    scheduler: Optional[str] = None
    # Corpus distills back down to at most this many entries.
    max_corpus_size: int = 64

    def scheduler_name(self) -> str:
        return self.scheduler or "bandit"

    def validate(self) -> "FeedbackConfig":
        """Reject inconsistent combinations with :class:`ValueError`."""
        if self.scheduler is not None and not self.enabled:
            raise ValueError(
                f"feedback.scheduler={self.scheduler!r} requires "
                "feedback.enabled=True (a scheduler without feedback has "
                "no signal to act on)")
        if self.corpus_dir and not self.enabled:
            raise ValueError(
                f"feedback.corpus_dir={self.corpus_dir!r} requires "
                "feedback.enabled=True (nothing would ever be admitted)")
        if self.scheduler is not None and self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown feedback.scheduler {self.scheduler!r} "
                f"(available: {', '.join(SCHEDULERS)})")
        if self.max_corpus_size < 1:
            raise ValueError("feedback.max_corpus_size must be >= 1, "
                             f"got {self.max_corpus_size}")
        return self


@dataclass
class FeedbackStats:
    """Aggregated coverage/corpus totals for reports.

    Per-driver these are exact; merged across drivers or campaign jobs
    they are sums over independent per-job corpora (feature spaces
    overlap between jobs, so ``features_covered`` reads as total
    coverage *work*, not a deduplicated global count).
    """

    features_covered: int = 0
    corpus_entries: int = 0
    admitted: int = 0
    distilled: int = 0
    new_features: int = 0
    draws: int = 0

    def merge(self, other: Optional["FeedbackStats"]) -> None:
        if other is None:
            return
        self.features_covered += other.features_covered
        self.corpus_entries += other.corpus_entries
        self.admitted += other.admitted
        self.distilled += other.distilled
        self.new_features += other.new_features
        self.draws += other.draws

    def to_dict(self) -> Dict[str, int]:
        return {
            "features_covered": self.features_covered,
            "corpus_entries": self.corpus_entries,
            "admitted": self.admitted,
            "distilled": self.distilled,
            "new_features": self.new_features,
            "draws": self.draws,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "FeedbackStats":
        return cls(**{key: int(data.get(key, 0)) for key in (
            "features_covered", "corpus_entries", "admitted", "distilled",
            "new_features", "draws")})
