"""The throughput experiment (paper §V-B, artifact appendix E.2/F.2).

For each corpus file, perform the *same* amount of mutation testing two
ways — the integrated in-process loop vs. the discrete-tools subprocess
workflow — with matching PRNG seeds, and report per-file times and the
performance ratio in the paper's ``res.txt`` format (Listing 20).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ir.parser import ParseError, parse_module
from ..mutate import MutatorConfig
from ..obs import MetricsRegistry
from ..tv import RefinementConfig
from .discrete import DiscreteConfig, run_discrete_workflow
from .driver import FuzzConfig, FuzzDriver


@dataclass
class ThroughputConfig:
    count: int = 1000            # mutants per file (the paper's COUNT)
    pipeline: str = "O2"
    base_seed: int = 0
    max_inputs: int = 8
    max_mutations: int = 3


@dataclass
class FileTiming:
    name: str
    alive_mutate_seconds: float
    discrete_seconds: float

    @property
    def perf(self) -> float:
        """How many times faster the integrated tool is."""
        if self.alive_mutate_seconds <= 0:
            return float("inf")
        return self.discrete_seconds / self.alive_mutate_seconds


@dataclass
class ThroughputReport:
    timings: List[FileTiming] = field(default_factory=list)
    not_verified: List[str] = field(default_factory=list)
    invalid: List[str] = field(default_factory=list)
    # Observability registry (repro.obs): file counters plus the two
    # workflows' wall-clock totals (throughput.{alive,discrete}.seconds),
    # merged from every measured file's fuzzing run.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def average_perf(self) -> float:
        if not self.timings:
            return 0.0
        return sum(t.perf for t in self.timings) / len(self.timings)

    @property
    def best_perf(self) -> float:
        return max((t.perf for t in self.timings), default=0.0)

    @property
    def worst_perf(self) -> float:
        return min((t.perf for t in self.timings), default=0.0)

    def render_res_txt(self) -> str:
        """The artifact's res.txt format (paper Listing 20)."""
        alive = [(t.alive_mutate_seconds, t.name) for t in self.timings]
        discrete = [(t.discrete_seconds, t.name) for t in self.timings]
        perf = [(t.perf, t.name) for t in self.timings]
        lines = [
            f"Total: {len(self.timings)}",
            f"Alive-mutate lst:{alive!r}",
            f"Discrete tools lst:{discrete!r}",
            f"perf lst:{perf!r}",
            f"Avg perf:{self.average_perf!r}",
            f"Total not-verified:{len(self.not_verified)}",
            f"Not-verified files:{self.not_verified!r}",
            f"Total invalid file:{len(self.invalid)}",
            f"Invalid files:{self.invalid!r}",
        ]
        return "\n".join(lines) + "\n"


def run_throughput_experiment(corpus: Sequence[Tuple[str, str]],
                              config: Optional[ThroughputConfig] = None
                              ) -> ThroughputReport:
    """Run both workflows over every (filename, text) corpus entry."""
    config = config or ThroughputConfig()
    report = ThroughputReport()
    with tempfile.TemporaryDirectory() as work_dir:
        for name, text in corpus:
            timing = _measure_file(name, text, config, work_dir, report)
            if timing is not None:
                report.timings.append(timing)
    return report


def _measure_file(name: str, text: str, config: ThroughputConfig,
                  work_dir: str, report: ThroughputReport
                  ) -> Optional[FileTiming]:
    try:
        module = parse_module(text, name)
    except ParseError:
        report.invalid.append(name)
        report.metrics.count("throughput.invalid_files")
        return None

    fuzz_config = FuzzConfig(
        pipeline=config.pipeline,
        mutator=MutatorConfig(max_mutations=config.max_mutations),
        tv=RefinementConfig(max_inputs=config.max_inputs),
        base_seed=config.base_seed,
    )
    driver = FuzzDriver(module, fuzz_config, file_name=name)
    if not driver.target_functions or driver.report.dropped_functions:
        # The paper discarded files that triggered Alive2 errors (6/200).
        report.invalid.append(name)
        report.metrics.count("throughput.invalid_files")
        return None

    begin = time.perf_counter()
    result = driver.run(iterations=config.count)
    alive_seconds = time.perf_counter() - begin
    report.metrics.merge(result.metrics)
    report.metrics.count("throughput.files")
    report.metrics.count("throughput.alive.seconds", alive_seconds)
    if result.findings:
        report.not_verified.append(name)
        report.metrics.count("throughput.not_verified_files")

    input_path = os.path.join(work_dir, name)
    with open(input_path, "w") as stream:
        stream.write(text)
    discrete_config = DiscreteConfig(
        pipeline=config.pipeline,
        base_seed=config.base_seed,
        max_mutations=config.max_mutations,
        max_inputs=config.max_inputs,
        work_dir=os.path.join(work_dir, "scratch"),
    )
    begin = time.perf_counter()
    run_discrete_workflow(input_path, config.count, discrete_config)
    discrete_seconds = time.perf_counter() - begin
    report.metrics.count("throughput.discrete.seconds", discrete_seconds)

    return FileTiming(name=name, alive_mutate_seconds=alive_seconds,
                      discrete_seconds=discrete_seconds)
