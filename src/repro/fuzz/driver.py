"""The in-process fuzzing driver (paper §III, Figure 3).

Everything — mutation, optimization, and translation validation — runs in
one process over in-memory IR.  The mutate→optimize→verify loop therefore
pays no parsing, printing, file-I/O, or process-management cost, which is
the source of the paper's 12x throughput claim; per-stage timings are
recorded so the overhead experiment (Figure 2 analog) can read them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.function import Function
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..mutate import Mutator, MutatorConfig
from ..obs import NULL_TRACER, MetricsRegistry, ProgressReporter, Tracer
from ..opt import OptContext, OptimizerCrash, PassManager
from ..tv import RefinementConfig, Verdict, check_function_supported, \
    check_refinement
from .findings import CRASH, MISCOMPILATION, BugLog, Finding


class ConfigError(ValueError):
    """A fuzzing configuration that cannot be satisfied.

    Subclasses :class:`ValueError` so callers that predate the structured
    validation keep working unchanged.
    """


class DeadlineExceeded(Exception):
    """A cooperative per-job wall-clock deadline expired mid-run.

    Raised at stage boundaries of the fuzzing loop (never mid-stage) when
    :attr:`FuzzDriver.deadline_at` has passed.  The campaign runtime
    records the job as a ``hang`` failure; see
    :mod:`repro.fuzz.parallel`.
    """


@dataclass
class FuzzConfig:
    pipeline: str = "O2"
    enabled_bugs: Sequence[str] = ()
    mutator: MutatorConfig = field(default_factory=MutatorConfig)
    tv: RefinementConfig = field(default_factory=RefinementConfig)
    base_seed: int = 0
    # Saving mutants to disk is off by default — the paper's fast path.
    save_dir: Optional[str] = None
    save_all: bool = False
    log_path: Optional[str] = None
    stop_on_first_finding: bool = False

    def validate(self, iterations: Optional[int] = None,
                 time_budget: Optional[float] = None,
                 require_budget: bool = False) -> "FuzzConfig":
        """Reject nonsense with a clear :class:`ConfigError`.

        Checks the config itself (seeds, pipeline, mutation range) and,
        when given, the run budget.  ``require_budget=True`` additionally
        demands that at least one of ``iterations``/``time_budget`` is
        set, mirroring :meth:`FuzzDriver.run`'s contract.
        """
        from ..opt import available_passes, available_pipelines, expand
        if self.base_seed < 0:
            raise ConfigError(f"base_seed must be >= 0, got {self.base_seed}")
        if self.tv.seed < 0:
            raise ConfigError(f"tv.seed must be >= 0, got {self.tv.seed}")
        if self.tv.max_inputs <= 0:
            raise ConfigError(
                f"tv.max_inputs must be positive, got {self.tv.max_inputs}")
        if self.mutator.min_mutations < 1:
            raise ConfigError("mutator.min_mutations must be >= 1, "
                              f"got {self.mutator.min_mutations}")
        if self.mutator.max_mutations < self.mutator.min_mutations:
            raise ConfigError(
                f"mutator.max_mutations ({self.mutator.max_mutations}) < "
                f"min_mutations ({self.mutator.min_mutations})")
        known = set(available_passes())
        for name in expand(self.pipeline):
            if name not in known:
                raise ConfigError(
                    f"unknown pipeline or pass {name!r} in "
                    f"{self.pipeline!r} (pipelines: "
                    f"{', '.join(available_pipelines())}; see "
                    "repro-opt --list-passes for individual passes)")
        if iterations is not None and iterations < 0:
            raise ConfigError(f"iterations must be >= 0, got {iterations}")
        if time_budget is not None and time_budget <= 0:
            raise ConfigError(
                f"time_budget must be positive, got {time_budget}")
        if require_budget and iterations is None and time_budget is None:
            raise ConfigError("specify iterations and/or time_budget")
        return self


@dataclass
class StageTimings:
    """Per-stage wall-clock totals (seconds)."""

    mutate: float = 0.0
    optimize: float = 0.0
    verify: float = 0.0

    @property
    def total(self) -> float:
        return self.mutate + self.optimize + self.verify


@dataclass
class FuzzReport:
    iterations: int = 0
    findings: List[Finding] = field(default_factory=list)
    dropped_functions: Dict[str, str] = field(default_factory=dict)
    timings: StageTimings = field(default_factory=StageTimings)
    inconclusive: int = 0
    # How many times each mutation operator fired across all iterations.
    mutation_counts: Dict[str, int] = field(default_factory=dict)
    # Per-run observability registry (see repro.obs.metrics): stage
    # seconds, mutant validity, finding counters, latency histograms.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def summary(self) -> str:
        return (f"{self.iterations} iterations, "
                f"{len(self.findings)} findings "
                f"({sum(1 for f in self.findings if f.kind == MISCOMPILATION)}"
                " miscompilations, "
                f"{sum(1 for f in self.findings if f.kind == CRASH)} crashes)"
                f" in {self.timings.total:.2f}s")


class FuzzDriver:
    """Owns one seed module and fuzzes it in-process."""

    def __init__(self, module: Module, config: Optional[FuzzConfig] = None,
                 file_name: str = "", *,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 progress: Optional[ProgressReporter] = None) -> None:
        self.config = (config or FuzzConfig()).validate()
        self.file_name = file_name or module.name
        self.report = FuzzReport()
        # Observability: the metrics registry is shared with the report
        # (and, in campaigns, shipped back inside ShardResult); the
        # tracer defaults to the free disabled singleton.
        self.metrics = metrics if metrics is not None else \
            self.report.metrics
        self.report.metrics = self.metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.progress = progress
        self.log = BugLog(self.config.log_path, metrics=self.metrics)
        self.module = module
        # Cooperative watchdog: an absolute ``time.monotonic()`` deadline
        # (or None).  Checked at stage boundaries; on expiry the loop
        # raises DeadlineExceeded instead of starting the next stage.
        self.deadline_at: Optional[float] = None
        self._preprocess()
        self.mutator = Mutator(module, self._mutator_config(),
                               tracer=self.tracer)

    @classmethod
    def from_text(cls, text: str, config: Optional[FuzzConfig] = None,
                  file_name: str = "") -> "FuzzDriver":
        return cls(parse_module(text, file_name or "input"), config,
                   file_name)

    def _mutator_config(self) -> MutatorConfig:
        base = self.config.mutator
        return MutatorConfig(
            min_mutations=base.min_mutations,
            max_mutations=base.max_mutations,
            enabled_mutations=base.enabled_mutations,
            verify_mutants=base.verify_mutants,
            only_functions=list(self._targets),
        )

    # -- preprocessing (paper §III-A) ---------------------------------------

    def _preprocess(self) -> None:
        """Drop functions the validator cannot handle, and functions whose
        *un-mutated* form already fails validation (no point mutating)."""
        self._targets: List[str] = []
        for function in self.module.definitions():
            reason = check_function_supported(function)
            if reason is not None:
                self.report.dropped_functions[function.name] = reason
                continue
            baseline = self._baseline_ok(function)
            if baseline is not None:
                self.report.dropped_functions[function.name] = baseline
                continue
            self._targets.append(function.name)

    def _baseline_ok(self, function: Function) -> Optional[str]:
        optimized = self.module.clone()
        ctx = OptContext(self.config.enabled_bugs)
        try:
            PassManager([self.config.pipeline], ctx).run(optimized)
        except OptimizerCrash:
            return None  # crashes on the seed itself still count as fuzz food
        target = optimized.get_function(function.name)
        if target is None or target.is_declaration():
            return "function vanished during baseline optimization"
        result = check_refinement(function, target, self.module, optimized,
                                  self.config.tv)
        if result.verdict == Verdict.UNSOUND and not ctx.triggered_bugs:
            return "un-mutated form already fails translation validation"
        return None

    @property
    def target_functions(self) -> List[str]:
        return list(self._targets)

    def set_deadline(self, seconds: Optional[float]) -> None:
        """Arm the cooperative deadline ``seconds`` from now (None disarms)."""
        self.deadline_at = (None if seconds is None
                            else time.monotonic() + seconds)

    def check_deadline(self) -> None:
        """Raise :class:`DeadlineExceeded` if the armed deadline passed."""
        if self.deadline_at is not None \
                and time.monotonic() >= self.deadline_at:
            raise DeadlineExceeded(
                "cooperative job deadline exceeded while fuzzing "
                f"{self.file_name or 'input'}")

    # -- the loop (paper §III-B..E) ---------------------------------------------

    def run(self, iterations: Optional[int] = None,
            time_budget: Optional[float] = None,
            strict: bool = False) -> FuzzReport:
        """Fuzz until the iteration count or the time budget is exhausted.

        When preprocessing dropped every function there is nothing to
        fuzz: the report comes back with zero iterations and
        ``dropped_functions`` populated, so callers need no pre-flight
        ``target_functions`` guard.  Pass ``strict=True`` to get the old
        behavior of raising ``ValueError`` instead.
        """
        self.config.validate(iterations=iterations, time_budget=time_budget,
                             require_budget=True)
        if not self._targets:
            if strict:
                raise ValueError(
                    "no processable functions (all were dropped during "
                    f"preprocessing: {self.report.dropped_functions})")
            return self.report
        started = time.perf_counter()
        i = 0
        while True:
            if iterations is not None and i >= iterations:
                break
            if time_budget is not None \
                    and time.perf_counter() - started >= time_budget:
                break
            self.check_deadline()
            finding = self.run_one(self.config.base_seed + i)
            i += 1
            self.report.iterations = i
            if self.progress is not None:
                self.progress.tick(self.metrics)
            if finding and self.config.stop_on_first_finding:
                break
        self.report.iterations = i
        return self.report

    def run_one(self, seed: int) -> List[Finding]:
        """One mutate→optimize→verify iteration; returns its findings."""
        timings = self.report.timings
        metrics = self.metrics
        found: List[Finding] = []

        begin = time.perf_counter()
        mutant, record = self.mutator.create_mutant(seed)
        mutate_seconds = time.perf_counter() - begin
        timings.mutate += mutate_seconds
        metrics.count("mutants.created")
        if record.applied:
            metrics.count("mutants.valid")
        for _, operator in record.applied:
            self.report.mutation_counts[operator] = \
                self.report.mutation_counts.get(operator, 0) + 1
            metrics.count("mutate.op." + operator)
        metrics.count("stage.mutate.seconds", mutate_seconds)
        self.tracer.record("mutate", begin, mutate_seconds, seed=seed,
                           applied=len(record.applied))

        if self.config.save_all:
            self._save(mutant, seed)

        self.check_deadline()
        begin = time.perf_counter()
        optimized = mutant.clone()
        ctx = OptContext(self.config.enabled_bugs)
        crash: Optional[OptimizerCrash] = None
        try:
            PassManager([self.config.pipeline], ctx,
                        tracer=self.tracer).run(optimized)
        except OptimizerCrash as exc:
            crash = exc
        optimize_seconds = time.perf_counter() - begin
        timings.optimize += optimize_seconds
        metrics.count("stage.optimize.seconds", optimize_seconds)
        self.tracer.record("optimize", begin, optimize_seconds, seed=seed,
                           crashed=crash is not None)

        if crash is not None:
            finding = Finding(kind=CRASH, seed=seed, file=self.file_name,
                              detail=str(crash), bug_ids=[crash.bug_id])
            self.log.record(finding)
            self.report.findings.append(finding)
            found.append(finding)
            if self.config.save_dir and not self.config.save_all:
                self._save(mutant, seed)
            metrics.observe("iteration.seconds",
                            mutate_seconds + optimize_seconds)
            return found

        self.check_deadline()
        begin = time.perf_counter()
        for name in self._targets:
            source = mutant.get_function(name)
            target = optimized.get_function(name)
            if source is None or target is None or target.is_declaration():
                continue
            result = check_refinement(source, target, mutant, optimized,
                                      self.config.tv, tracer=self.tracer)
            metrics.count("tv.checks")
            self.report.inconclusive += result.inconclusive_inputs
            if result.inconclusive_inputs:
                metrics.count("tv.inconclusive_inputs",
                              result.inconclusive_inputs)
            if result.verdict == Verdict.UNSOUND:
                detail = str(result.counterexample) if result.counterexample \
                    else "refinement failure"
                finding = Finding(kind=MISCOMPILATION, seed=seed,
                                  file=self.file_name, function=name,
                                  detail=detail,
                                  bug_ids=sorted(ctx.triggered_bugs))
                self.log.record(finding)
                self.report.findings.append(finding)
                found.append(finding)
                if self.config.save_dir and not self.config.save_all:
                    self._save(mutant, seed)
        verify_seconds = time.perf_counter() - begin
        timings.verify += verify_seconds
        metrics.count("stage.verify.seconds", verify_seconds)
        self.tracer.record("verify", begin, verify_seconds, seed=seed,
                           findings=len(found))
        metrics.observe("iteration.seconds",
                        mutate_seconds + optimize_seconds + verify_seconds)
        return found

    def recreate(self, seed: int) -> Module:
        """Replay a logged seed (re-run with file saving, per §III-E)."""
        return self.mutator.recreate_mutant(seed)

    def _save(self, mutant: Module, seed: int) -> None:
        directory = self.config.save_dir
        if not directory:
            return
        os.makedirs(directory, exist_ok=True)
        stem = os.path.splitext(os.path.basename(self.file_name or "mutant"))[0]
        path = os.path.join(directory, f"{stem}_{seed}.ll")
        with open(path, "w") as stream:
            stream.write(print_module(mutant))
