"""The in-process fuzzing driver (paper §III, Figure 3).

Everything — mutation, optimization, and translation validation — runs in
one process over in-memory IR.  The mutate→optimize→verify loop therefore
pays no parsing, printing, file-I/O, or process-management cost, which is
the source of the paper's 12x throughput claim; per-stage timings are
recorded so the overhead experiment (Figure 2 analog) can read them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.fingerprint import (fingerprint_closure, fingerprint_function,
                              references_definitions)
from ..ir.function import Function
from ..ir.module import Module, clone_functions_into
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..mutate import MutantRecord, Mutator, MutatorConfig
from ..obs import NULL_TRACER, MetricsRegistry, ProgressReporter, Tracer
from ..opt import (IncrementalState, OptContext, OptimizerCrash, PassManager,
                   initial_dirty)
from ..tv import RefinementConfig, Verdict, check_function_supported, \
    check_refinement, global_batch_stats, global_plan_cache
from .corpus import Corpus, CorpusEntry, CorpusJournal, module_fingerprint
from .feedback import (Feedback, FeedbackConfig, FeedbackStats, bug_feature)
from .findings import CRASH, MISCOMPILATION, BugLog, Finding
from .memo import LRUCache, OptimizeEntry
from .schedule import create_scheduler


class ConfigError(ValueError):
    """A fuzzing configuration that cannot be satisfied.

    Subclasses :class:`ValueError` so callers that predate the structured
    validation keep working unchanged.
    """


class DeadlineExceeded(Exception):
    """A cooperative per-job wall-clock deadline expired mid-run.

    Raised at stage boundaries of the fuzzing loop (never mid-stage) when
    :attr:`FuzzDriver.deadline_at` has passed.  The campaign runtime
    records the job as a ``hang`` failure; see
    :mod:`repro.fuzz.parallel`.
    """


@dataclass
class FuzzConfig:
    pipeline: str = "O2"
    enabled_bugs: Sequence[str] = ()
    mutator: MutatorConfig = field(default_factory=MutatorConfig)
    tv: RefinementConfig = field(default_factory=RefinementConfig)
    base_seed: int = 0
    # Saving mutants to disk is off by default — the paper's fast path.
    save_dir: Optional[str] = None
    save_all: bool = False
    log_path: Optional[str] = None
    stop_on_first_finding: bool = False
    # Fingerprint memoization (paper §III-B, lifted to whole stages):
    # bounded LRU caches replay optimize results and verify verdicts for
    # structurally repeated functions.  Guaranteed finding-preserving —
    # cached UNSOUND verdicts and optimizer crashes are replayed, and
    # cache hits re-inject their ``OptContext.triggered_bugs``.  Disable
    # (with ``mutator.cow_clone``) for the classic deep-clone loop, e.g.
    # via ``alive-mutate --no-memo``.
    memo: bool = True
    optimize_cache_size: int = 512
    verify_cache_size: int = 2048
    # Incremental re-optimization (requires memo): per-(function
    # fingerprint, pass) skip memos plus worklist-driven scan passes that
    # revisit only the mutation's dirty region.  Bit-identical to full
    # optimization — IR, stats, bug attribution, and findings all match —
    # so it is on by default; ``alive-mutate --no-incremental-opt``
    # disables it for ablation.
    incremental: bool = True
    incremental_cache_size: int = 4096
    # Coverage-guided fuzzing (rule-firing feedback, runtime corpus,
    # adaptive scheduling) — one sub-config, off by default; see
    # repro.fuzz.feedback.
    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)

    def validate(self, iterations: Optional[int] = None,
                 time_budget: Optional[float] = None,
                 require_budget: bool = False) -> "FuzzConfig":
        """Reject nonsense with a clear :class:`ConfigError`.

        Checks the config itself (seeds, pipeline, mutation range) and,
        when given, the run budget.  ``require_budget=True`` additionally
        demands that at least one of ``iterations``/``time_budget`` is
        set, mirroring :meth:`FuzzDriver.run`'s contract.
        """
        from ..opt import available_passes, available_pipelines, expand
        if self.base_seed < 0:
            raise ConfigError(f"base_seed must be >= 0, got {self.base_seed}")
        if self.tv.seed < 0:
            raise ConfigError(f"tv.seed must be >= 0, got {self.tv.seed}")
        if self.tv.max_inputs <= 0:
            raise ConfigError(
                f"tv.max_inputs must be positive, got {self.tv.max_inputs}")
        if self.mutator.min_mutations < 1:
            raise ConfigError("mutator.min_mutations must be >= 1, "
                              f"got {self.mutator.min_mutations}")
        if self.mutator.max_mutations < self.mutator.min_mutations:
            raise ConfigError(
                f"mutator.max_mutations ({self.mutator.max_mutations}) < "
                f"min_mutations ({self.mutator.min_mutations})")
        known = set(available_passes())
        for name in expand(self.pipeline):
            if name not in known:
                raise ConfigError(
                    f"unknown pipeline or pass {name!r} in "
                    f"{self.pipeline!r} (pipelines: "
                    f"{', '.join(available_pipelines())}; see "
                    "repro-opt --list-passes for individual passes)")
        if self.memo and self.optimize_cache_size <= 0:
            raise ConfigError("optimize_cache_size must be positive, got "
                              f"{self.optimize_cache_size}")
        if self.memo and self.verify_cache_size <= 0:
            raise ConfigError("verify_cache_size must be positive, got "
                              f"{self.verify_cache_size}")
        if self.memo and self.incremental and self.incremental_cache_size <= 0:
            raise ConfigError("incremental_cache_size must be positive, got "
                              f"{self.incremental_cache_size}")
        try:
            self.feedback.validate()
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
        if iterations is not None and iterations < 0:
            raise ConfigError(f"iterations must be >= 0, got {iterations}")
        if time_budget is not None and time_budget <= 0:
            raise ConfigError(
                f"time_budget must be positive, got {time_budget}")
        if require_budget and iterations is None and time_budget is None:
            raise ConfigError("specify iterations and/or time_budget")
        return self


@dataclass
class StageTimings:
    """Per-stage wall-clock totals (seconds)."""

    mutate: float = 0.0
    optimize: float = 0.0
    verify: float = 0.0

    @property
    def total(self) -> float:
        return self.mutate + self.optimize + self.verify


@dataclass
class FuzzReport:
    iterations: int = 0
    findings: List[Finding] = field(default_factory=list)
    dropped_functions: Dict[str, str] = field(default_factory=dict)
    timings: StageTimings = field(default_factory=StageTimings)
    inconclusive: int = 0
    # How many times each mutation operator fired across all iterations.
    mutation_counts: Dict[str, int] = field(default_factory=dict)
    # Per-run observability registry (see repro.obs.metrics): stage
    # seconds, mutant validity, finding counters, latency histograms.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    # Coverage/corpus totals (None when feedback is disabled).
    feedback: Optional[FeedbackStats] = None

    def summary(self) -> str:
        return (f"{self.iterations} iterations, "
                f"{len(self.findings)} findings "
                f"({sum(1 for f in self.findings if f.kind == MISCOMPILATION)}"
                " miscompilations, "
                f"{sum(1 for f in self.findings if f.kind == CRASH)} crashes)"
                f" in {self.timings.total:.2f}s")


@dataclass
class _MutationSource:
    """One module mutants can be drawn from: the seed or a corpus entry.

    Each source carries its own mutator and its own fingerprint maps so
    the copy-on-write shortcut in :meth:`FuzzDriver._optimize_memo`
    never attributes another source's fingerprints to an untouched
    function.
    """

    module: Module
    mutator: Mutator
    fps: Dict[str, str]
    fp_by_id: Dict[int, str]


class FuzzDriver:
    """Owns one seed module and fuzzes it in-process."""

    def __init__(self, module: Module, config: Optional[FuzzConfig] = None,
                 file_name: str = "", *,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 progress: Optional[ProgressReporter] = None) -> None:
        self.config = (config or FuzzConfig()).validate()
        self.file_name = file_name or module.name
        self.report = FuzzReport()
        # Observability: the metrics registry is shared with the report
        # (and, in campaigns, shipped back inside ShardResult); the
        # tracer defaults to the free disabled singleton.
        self.metrics = metrics if metrics is not None else \
            self.report.metrics
        self.report.metrics = self.metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.progress = progress
        self.log = BugLog(self.config.log_path, metrics=self.metrics)
        self.module = module
        # Cooperative watchdog: an absolute ``time.monotonic()`` deadline
        # (or None).  Checked at stage boundaries; on expiry the loop
        # raises DeadlineExceeded instead of starting the next stage.
        self.deadline_at: Optional[float] = None
        # Memoization state (see repro.fuzz.memo): bounded LRU caches
        # over structural fingerprints, plus the seed module's own
        # fingerprints (by name and by object id) so copy-on-write
        # mutants can skip re-hashing functions no operator touched.
        self._pipeline_key = self.config.pipeline
        self._tv_key = self.config.tv.cache_key()
        self._opt_cache: Optional[LRUCache] = (
            LRUCache(self.config.optimize_cache_size)
            if self.config.memo else None)
        self._tv_cache: Optional[LRUCache] = (
            LRUCache(self.config.verify_cache_size)
            if self.config.memo else None)
        # Incremental optimization (see repro.opt.incremental): the
        # per-(fingerprint, pass) skip-memo store, shared by the baseline
        # run and every mutant iteration.  Needs the whole-stage memo's
        # fingerprints, so it rides on the same switch.
        self._incremental: Optional[IncrementalState] = (
            IncrementalState(self.config.incremental_cache_size,
                             metrics=self.metrics)
            if self.config.memo and self.config.incremental else None)
        self._seed_fps: Dict[str, str] = {}
        self._seed_fp_by_id: Dict[int, str] = {}
        # Execution-plan cache observability: the cache itself is
        # process-wide (repro.tv.compile), so hit/miss deltas since the
        # last snapshot are folded into this driver's metrics at stage
        # boundaries as exec.plan_cache.* counters.
        self._plan_stats: Optional[Tuple[int, int, int]] = (
            global_plan_cache().stats() if self.config.tv.compiled else None)
        # Batched-execution observability follows the same delta-fold
        # pattern: exec.batch.* counters record lanes driven per batch,
        # divergence regrouping, and scalar fallbacks.
        self._batch_stats: Optional[Tuple[int, int, int, int]] = (
            global_batch_stats().stats()
            if self.config.tv.compiled and self.config.tv.batched else None)
        self._preprocess()
        self._harvest_plan_stats()
        self._harvest_batch_stats()
        self.mutator = Mutator(module, self._mutator_config(),
                               tracer=self.tracer)
        # Coverage-guided state (see repro.fuzz.feedback): the runtime
        # corpus, the (source, mutation-class) scheduler, and the
        # registry of mutation sources.  All deterministic per job.
        self.corpus: Optional[Corpus] = None
        self.scheduler = None
        self.last_feedback: Optional[Feedback] = None
        self._sources: Dict[str, _MutationSource] = {}
        if self.config.feedback.enabled:
            self._init_feedback()

    def _init_feedback(self) -> None:
        fb = self.config.feedback
        journal: Optional[CorpusJournal] = None
        if fb.corpus_dir:
            stem = os.path.splitext(
                os.path.basename(self.file_name or "input"))[0]
            journal = CorpusJournal(os.path.join(
                fb.corpus_dir,
                f"{stem}_{self.config.base_seed}.corpus.jsonl"))
            journal.start()
        self.corpus = Corpus(fb.max_corpus_size, journal=journal)
        # The seed's own baseline behavior is not "new" — pre-covering it
        # means only mutants reaching *beyond* the seed are admitted.
        self.corpus.cover(self._baseline_features)
        self.scheduler = create_scheduler(
            fb.scheduler_name(), self.mutator.config.mutation_names())
        self.scheduler.add_source("seed")
        self._sources["seed"] = _MutationSource(
            module=self.module, mutator=self.mutator,
            fps=self._seed_fps, fp_by_id=self._seed_fp_by_id)
        self.report.feedback = FeedbackStats()

    def close(self) -> None:
        """Release per-driver resources (the corpus journal stream)."""
        if self.corpus is not None and self.corpus.journal is not None:
            self.corpus.journal.close()

    @classmethod
    def from_text(cls, text: str, config: Optional[FuzzConfig] = None,
                  file_name: str = "") -> "FuzzDriver":
        return cls(parse_module(text, file_name or "input"), config,
                   file_name)

    def _mutator_config(self) -> MutatorConfig:
        base = self.config.mutator
        return MutatorConfig(
            min_mutations=base.min_mutations,
            max_mutations=base.max_mutations,
            enabled_mutations=base.enabled_mutations,
            verify_mutants=base.verify_mutants,
            only_functions=list(self._targets),
            cow_clone=base.cow_clone,
        )

    # -- preprocessing (paper §III-A) ---------------------------------------

    def _preprocess(self) -> None:
        """Drop functions the validator cannot handle, and functions whose
        *un-mutated* form already fails validation (no point mutating).

        The baseline clone+optimize runs once for the *whole module* (it
        used to run once per candidate function — O(F²) in module size);
        every candidate is checked against that single optimized copy.
        When memoization is on, the per-function baseline results seed
        the optimize and verify caches, so functions a mutation round
        leaves untouched hit from the very first iteration.
        """
        self._targets: List[str] = []
        self._baseline_features: Set[str] = set()
        reasons: Dict[str, Optional[str]] = {}
        candidates: List[Function] = []
        for function in self.module.definitions():
            reason = check_function_supported(function)
            reasons[function.name] = reason
            if reason is None:
                candidates.append(function)
        if candidates:
            baseline, crashed, union_bugs = self._optimize_baseline()
            if crashed:
                # Crashes on the seed itself still count as fuzz food.
                self._targets = [f.name for f in candidates]
            else:
                fp_cache = dict(self._seed_fp_by_id)
                for function in candidates:
                    target = baseline.get_function(function.name)
                    if target is None or target.is_declaration():
                        reasons[function.name] = \
                            "function vanished during baseline optimization"
                        continue
                    result = check_refinement(function, target, self.module,
                                              baseline, self.config.tv)
                    if self._tv_cache is not None:
                        key = self._verify_key(function, target, fp_cache)
                        self._tv_cache.put(key, result)
                    if result.verdict == Verdict.UNSOUND and not union_bugs:
                        reasons[function.name] = ("un-mutated form already "
                                                  "fails translation "
                                                  "validation")
                        continue
                    self._targets.append(function.name)
        for function in self.module.definitions():
            reason = reasons.get(function.name)
            if reason is not None:
                self.report.dropped_functions[function.name] = reason

    def _optimize_baseline(self) -> Tuple[Module, bool, Set[str]]:
        """Clone and optimize the seed once, one function at a time.

        Returns ``(optimized module, crashed?, union of triggered bug
        ids)``.  Function-major pipeline runs produce the same IR as the
        pass-major whole-module run (every pass is function-local),
        while letting each function's optimized body, bug attribution,
        and crash be recorded individually in the optimize cache.
        """
        memo = self._opt_cache is not None
        if memo:
            for function in self.module.definitions():
                fp = fingerprint_function(function)
                self._seed_fps[function.name] = fp
                self._seed_fp_by_id[id(function)] = fp
        optimized = self.module.clone()
        manager = PassManager([self.config.pipeline], metrics=self.metrics)
        crashed = False
        union_bugs: Set[str] = set()
        for original in self.module.definitions():
            function = optimized.get_function(original.name)
            cacheable = memo and not references_definitions(original)
            ctx = OptContext(self.config.enabled_bugs)
            crash: Optional[OptimizerCrash] = None
            incremental = None
            if cacheable and self._incremental is not None:
                # Record per-pass skip memos along the seed's trajectory;
                # mutants whose clean regions reach these fingerprints
                # skip or worklist the matching passes.
                incremental = self._incremental.begin(
                    fp=self._seed_fps[original.name])
            try:
                manager.run_function(function, ctx, incremental=incremental)
            except OptimizerCrash as exc:
                crash = exc
                crashed = True
            union_bugs |= ctx.triggered_bugs
            self._baseline_features.update(ctx.stats)
            if cacheable:
                self._store_optimize_entry(self._seed_fps[original.name],
                                           function, ctx, crash)
        self._baseline_features.update(bug_feature(b) for b in union_bugs)
        return optimized, crashed, union_bugs

    def _store_optimize_entry(self, fp: str, function: Function,
                              ctx: OptContext,
                              crash: Optional[OptimizerCrash]) -> None:
        """Cache one function's pipeline outcome under its pre-opt hash.

        Only called for *cacheable* functions — bodies referencing no
        definition but themselves before optimization, so their pipeline
        outcome cannot depend on another function's mutable state (only
        callee *names and attribute sets*, and those belong to shared,
        never-mutated declarations).  Function-local passes cannot
        introduce new calls, but guard the post-opt body anyway.
        """
        if crash is None and references_definitions(function):
            return
        if crash is not None:
            entry = OptimizeEntry(function=None, fingerprint="",
                                  triggered_bugs=frozenset(
                                      ctx.triggered_bugs),
                                  crash=crash,
                                  stats=dict(ctx.stats))
        else:
            entry = OptimizeEntry(function=function,
                                  fingerprint=fingerprint_function(function),
                                  triggered_bugs=frozenset(
                                      ctx.triggered_bugs),
                                  crash=None,
                                  stats=dict(ctx.stats))
        self._opt_cache.put((fp, self._pipeline_key), entry)

    @property
    def target_functions(self) -> List[str]:
        return list(self._targets)

    def set_deadline(self, seconds: Optional[float]) -> None:
        """Arm the cooperative deadline ``seconds`` from now (None disarms)."""
        self.deadline_at = (None if seconds is None
                            else time.monotonic() + seconds)

    def check_deadline(self) -> None:
        """Raise :class:`DeadlineExceeded` if the armed deadline passed."""
        if self.deadline_at is not None \
                and time.monotonic() >= self.deadline_at:
            raise DeadlineExceeded(
                "cooperative job deadline exceeded while fuzzing "
                f"{self.file_name or 'input'}")

    # -- the loop (paper §III-B..E) ---------------------------------------------

    def run(self, iterations: Optional[int] = None,
            time_budget: Optional[float] = None,
            strict: bool = False) -> FuzzReport:
        """Fuzz until the iteration count or the time budget is exhausted.

        When preprocessing dropped every function there is nothing to
        fuzz: the report comes back with zero iterations and
        ``dropped_functions`` populated, so callers need no pre-flight
        ``target_functions`` guard.  Pass ``strict=True`` to get the old
        behavior of raising ``ValueError`` instead.
        """
        self.config.validate(iterations=iterations, time_budget=time_budget,
                             require_budget=True)
        if not self._targets:
            if strict:
                raise ValueError(
                    "no processable functions (all were dropped during "
                    f"preprocessing: {self.report.dropped_functions})")
            return self.report
        started = time.perf_counter()
        i = 0
        while True:
            if iterations is not None and i >= iterations:
                break
            if time_budget is not None \
                    and time.perf_counter() - started >= time_budget:
                break
            self.check_deadline()
            finding = self.run_one(self.config.base_seed + i)
            i += 1
            self.report.iterations = i
            if self.progress is not None:
                self.progress.tick(self.metrics)
            if finding and self.config.stop_on_first_finding:
                break
        self.report.iterations = i
        return self.report

    def run_one(self, seed: int) -> List[Finding]:
        """One mutate→optimize→verify iteration; returns its findings."""
        timings = self.report.timings
        metrics = self.metrics
        found: List[Finding] = []

        begin = time.perf_counter()
        arm: Optional[Tuple[str, str]] = None
        if self.scheduler is not None:
            arm = self.scheduler.select()
            src = self._sources[arm[0]]
            mutant, record = src.mutator.create_mutant(
                seed, operators=(arm[1],))
            source_fps, source_fp_by_id = src.fps, src.fp_by_id
        else:
            mutant, record = self.mutator.create_mutant(seed)
            source_fps, source_fp_by_id = self._seed_fps, self._seed_fp_by_id
        mutate_seconds = time.perf_counter() - begin
        timings.mutate += mutate_seconds
        metrics.count("mutants.created")
        metrics.count("clone.functions_copied", record.functions_copied)
        if record.applied:
            metrics.count("mutants.valid")
        for _, operator in record.applied:
            self.report.mutation_counts[operator] = \
                self.report.mutation_counts.get(operator, 0) + 1
            metrics.count("mutate.op." + operator)
        metrics.count("stage.mutate.seconds", mutate_seconds)
        self.tracer.record("mutate", begin, mutate_seconds, seed=seed,
                           applied=len(record.applied))

        if self.config.save_all:
            self._save(mutant, seed)

        self.check_deadline()
        begin = time.perf_counter()
        fp_cache: Dict[int, str] = dict(source_fp_by_id)
        if self._opt_cache is not None:
            optimized, ctx, crash = self._optimize_memo(mutant, record,
                                                        fp_cache, source_fps)
        else:
            optimized = mutant.clone()
            metrics.count("clone.functions_copied",
                          len(optimized.definitions()))
            ctx = OptContext(self.config.enabled_bugs)
            crash = None
            try:
                PassManager([self.config.pipeline], ctx, tracer=self.tracer,
                            metrics=metrics).run(optimized)
            except OptimizerCrash as exc:
                crash = exc
        optimize_seconds = time.perf_counter() - begin
        timings.optimize += optimize_seconds
        metrics.count("stage.optimize.seconds", optimize_seconds)
        self.tracer.record("optimize", begin, optimize_seconds, seed=seed,
                           crashed=crash is not None)

        if crash is not None:
            finding = Finding(kind=CRASH, seed=seed, file=self.file_name,
                              detail=str(crash), bug_ids=[crash.bug_id])
            self.log.record(finding)
            self.report.findings.append(finding)
            found.append(finding)
            if self.config.save_dir and not self.config.save_all:
                self._save(mutant, seed)
            if self.corpus is not None:
                # The crash feature is the only one pass-major and
                # function-major execution agree on mid-crash.
                self._record_feedback(
                    seed, mutant, arm,
                    frozenset({bug_feature(crash.bug_id)}), {},
                    crashed=True)
            metrics.observe("iteration.seconds",
                            mutate_seconds + optimize_seconds)
            return found

        self.check_deadline()
        begin = time.perf_counter()
        for name in self._targets:
            source = mutant.get_function(name)
            target = optimized.get_function(name)
            if source is None or target is None or target.is_declaration():
                continue
            result = None
            key = None
            if self._tv_cache is not None:
                key = self._verify_key(source, target, fp_cache)
                result = self._tv_cache.get(key)
                metrics.count("cache.verify.hit" if result is not None
                              else "cache.verify.miss")
            if result is None:
                result = check_refinement(source, target, mutant, optimized,
                                          self.config.tv, tracer=self.tracer)
                if key is not None:
                    self._tv_cache.put(key, result)
            metrics.count("tv.checks")
            self.report.inconclusive += result.inconclusive_inputs
            if result.inconclusive_inputs:
                metrics.count("tv.inconclusive_inputs",
                              result.inconclusive_inputs)
            if result.verdict == Verdict.UNSOUND:
                detail = str(result.counterexample) if result.counterexample \
                    else "refinement failure"
                finding = Finding(kind=MISCOMPILATION, seed=seed,
                                  file=self.file_name, function=name,
                                  detail=detail,
                                  bug_ids=sorted(ctx.triggered_bugs))
                self.log.record(finding)
                self.report.findings.append(finding)
                found.append(finding)
                if self.config.save_dir and not self.config.save_all:
                    self._save(mutant, seed)
        verify_seconds = time.perf_counter() - begin
        timings.verify += verify_seconds
        self._harvest_plan_stats()
        self._harvest_batch_stats()
        metrics.count("stage.verify.seconds", verify_seconds)
        self.tracer.record("verify", begin, verify_seconds, seed=seed,
                           findings=len(found))
        if self.corpus is not None:
            features = frozenset(ctx.stats) | frozenset(
                bug_feature(bug) for bug in ctx.triggered_bugs)
            self._record_feedback(seed, mutant, arm, features,
                                  dict(ctx.stats), crashed=False)
        metrics.observe("iteration.seconds",
                        mutate_seconds + optimize_seconds + verify_seconds)
        return found

    def _harvest_plan_stats(self) -> None:
        """Fold plan-cache lookup deltas since the last call into metrics."""
        if self._plan_stats is None:
            return
        stats = global_plan_cache().stats()
        previous = self._plan_stats
        if stats == previous:
            return
        for index, name in enumerate(("hit", "miss", "fallback")):
            delta = stats[index] - previous[index]
            if delta:
                self.metrics.count(f"exec.plan_cache.{name}", delta)
        self._plan_stats = stats

    def _harvest_batch_stats(self) -> None:
        """Fold batched-execution deltas since the last call into metrics."""
        if self._batch_stats is None:
            return
        stats = global_batch_stats().stats()
        previous = self._batch_stats
        if stats == previous:
            return
        names = ("batches", "lanes", "divergence_splits", "scalar_fallbacks")
        for index, name in enumerate(names):
            delta = stats[index] - previous[index]
            if delta:
                self.metrics.count(f"exec.batch.{name}", delta)
        self._batch_stats = stats

    # -- coverage feedback (corpus admission + scheduling reward) -----------

    def _record_feedback(self, seed: int, mutant: Module,
                         arm: Optional[Tuple[str, str]],
                         features: frozenset, counts: Dict[str, int],
                         crashed: bool) -> None:
        """Close one iteration's feedback loop.

        Computes the novel-feature set, admits the mutant to the corpus
        (crashing mutants only mark coverage — every derivative would
        re-crash identically, so they make poor mutation sources),
        rewards the scheduler arm that produced it, and refreshes the
        report's :class:`FeedbackStats`.
        """
        corpus = self.corpus
        metrics = self.metrics
        fresh = corpus.new_features(features)
        admitted = False
        if fresh:
            if crashed:
                corpus.cover(features)
            else:
                text = print_module(mutant)
                entry = CorpusEntry(
                    text=text, fingerprint=module_fingerprint(text),
                    features=features, seed=seed,
                    source=arm[0] if arm else "seed",
                    operator=arm[1] if arm else "")
                admitted = bool(corpus.consider(entry))
                if admitted:
                    metrics.count("corpus.admitted")
                    if self.scheduler is not None \
                            and entry.fingerprint not in self._sources:
                        self._add_corpus_source(entry)
            metrics.count("feedback.features.new", len(fresh))
        if self.scheduler is not None and arm is not None:
            self.scheduler.update(arm[0], arm[1], float(len(fresh)))
            metrics.count("feedback.draws")
        metrics.gauge_max("corpus.size", len(corpus))
        metrics.gauge_max("feedback.features.covered",
                          corpus.features_covered())
        stats = self.report.feedback
        stats.new_features += len(fresh)
        if arm is not None:
            stats.draws += 1
        stats.features_covered = corpus.features_covered()
        stats.corpus_entries = len(corpus)
        stats.admitted = corpus.admitted_count
        stats.distilled = corpus.distilled_count
        self.last_feedback = Feedback(
            features=features, new_features=fresh, admitted=admitted,
            source=arm[0] if arm else "seed",
            operator=arm[1] if arm else "", counts=counts)

    def _add_corpus_source(self, entry: CorpusEntry) -> None:
        """Turn an admitted corpus entry into a live mutation source.

        The entry is re-parsed from its printed text — a fresh module
        with its own fingerprint maps — so the copy-on-write shortcut
        can never confuse its functions with the seed's.
        """
        module = parse_module(entry.text, f"corpus-{entry.fingerprint[:12]}")
        mutator = Mutator(module, self._mutator_config(), tracer=self.tracer)
        fps: Dict[str, str] = {}
        fp_by_id: Dict[int, str] = {}
        if self._opt_cache is not None:
            for function in module.definitions():
                fp = fingerprint_function(function)
                fps[function.name] = fp
                fp_by_id[id(function)] = fp
        self._sources[entry.fingerprint] = _MutationSource(
            module=module, mutator=mutator, fps=fps, fp_by_id=fp_by_id)
        self.scheduler.add_source(entry.fingerprint)

    def _verify_key(self, source: Function, target: Function,
                    fp_cache: Dict[int, str]) -> tuple:
        """The verify-cache key for one refinement check.

        Closure fingerprints cover every defined function the
        interpreter can reach from either side; the *source argument
        names* ride along because input generation derives pointer block
        ids (and thus concrete addresses) from them, which fingerprints
        deliberately normalize away.  Declarations contribute only their
        names/attributes and are immutable for the driver's lifetime.
        """
        return (fingerprint_closure(source, fp_cache),
                tuple(argument.name for argument in source.arguments),
                fingerprint_closure(target, fp_cache),
                self._tv_key)

    def _optimize_memo(self, mutant: Module, record: MutantRecord,
                       fp_cache: Dict[int, str],
                       source_fps: Optional[Dict[str, str]] = None
                       ) -> Tuple[Module, OptContext, Optional[OptimizerCrash]]:
        """Build the optimized module through the fingerprint caches.

        Each definition is classified by its pre-optimization
        fingerprint: hits adopt the cached optimized body as an
        immutable view (zero copying; its ``triggered_bugs``/crash are
        replayed so cache hits never mask findings), misses are
        deep-copied and run through the pipeline one function at a time.
        Crash policy matches the no-memo whole-module run for the common
        single-crash-bug case: the first crashing definition in module
        order wins and aborts the iteration.
        """
        metrics = self.metrics
        if source_fps is None:
            source_fps = self._seed_fps
        dirty = record.dirty_functions()
        ctx = OptContext(self.config.enabled_bugs)
        optimized = Module(mutant.name)
        hits: List[Tuple[str, OptimizeEntry]] = []
        misses: List[Tuple[int, Function]] = []
        cached_crash: Optional[Tuple[int, OptimizerCrash]] = None
        position = -1
        for function in mutant.functions():
            if function.is_declaration():
                optimized.adopt_shared(function)
                continue
            position += 1
            fp = fp_cache.get(id(function))
            if fp is None:
                # Copy-on-write shortcut: a target no operator changed
                # is structurally identical to its source's function.
                if function.name not in dirty \
                        and function.name in source_fps:
                    fp = source_fps[function.name]
                else:
                    fp = fingerprint_function(function)
                fp_cache[id(function)] = fp
            entry = self._opt_cache.get((fp, self._pipeline_key))
            if entry is None:
                metrics.count("cache.optimize.miss")
                misses.append((position, function))
                continue
            metrics.count("cache.optimize.hit")
            ctx.triggered_bugs |= entry.triggered_bugs
            ctx.stats.update(entry.stats)
            if entry.crash is not None:
                if cached_crash is None:
                    cached_crash = (position, entry.crash)
            else:
                hits.append((function.name, entry))

        # Hits are adopted (shared views of cached bodies; the
        # spliceability rule guarantees they reference nothing but
        # themselves and declarations, which resolve by name/attributes).
        # A hit cached under a different name — alpha-equivalent twin —
        # is spliced in under this function's name instead.  When a
        # cached crash will abort the iteration anyway, skip all hits.
        sources: Dict[str, Function] = {}
        renamed: Dict[str, OptimizeEntry] = {}
        if cached_crash is None:
            for name, entry in hits:
                if entry.function.name == name:
                    optimized.adopt_shared(entry.function)
                    fp_cache[id(entry.function)] = entry.fingerprint
                else:
                    sources[name] = entry.function
                    renamed[name] = entry
        for position, function in misses:
            if cached_crash is not None and position > cached_crash[0]:
                continue
            sources[function.name] = function
        copies = clone_functions_into(sources, optimized) if sources else {}
        metrics.count("clone.functions_copied", len(sources))
        for name, entry in renamed.items():
            # Self-references hash as "self", so the fingerprint is
            # rename-invariant and the cached one can be reused.
            fp_cache[id(copies[name])] = entry.fingerprint

        crash: Optional[OptimizerCrash] = None
        manager = PassManager([self.config.pipeline], ctx,
                              tracer=self.tracer, metrics=metrics)
        for position, function in misses:
            if cached_crash is not None and position > cached_crash[0]:
                break
            copy = copies[function.name]
            fn_ctx = OptContext(self.config.enabled_bugs)
            fn_crash: Optional[OptimizerCrash] = None
            incremental = None
            if self._incremental is not None \
                    and not references_definitions(function):
                # Seed the dirty region from the mutation's touched
                # blocks (untouched-but-evicted functions get an empty
                # region and replay their source's recorded trajectory);
                # passes recorded quiescent on the *source* fingerprint
                # are proven on the mutant's clean complement.
                if function.name not in dirty:
                    seed_dirty: Optional[set] = set()
                    refingerprints: Optional[int] = None
                else:
                    touched = record.touched.get(function.name)
                    seed_dirty = (initial_dirty(copy, touched)
                                  if touched is not None else None)
                    # A mutated body's intermediate forms are almost
                    # never memoized; cap the whole-function re-hashes
                    # at one convergence checkpoint (see IncrementalRun).
                    refingerprints = 1
                proven = self._incremental.proven_passes(
                    source_fps.get(function.name), manager.pass_names)
                incremental = self._incremental.begin(
                    fp=fp_cache[id(function)], dirty=seed_dirty,
                    proven=proven, refingerprints=refingerprints)
            try:
                manager.run_function(copy, fn_ctx, incremental=incremental)
            except OptimizerCrash as exc:
                fn_crash = exc
            ctx.triggered_bugs |= fn_ctx.triggered_bugs
            ctx.stats.update(fn_ctx.stats)
            if not references_definitions(function):
                self._store_optimize_entry(fp_cache[id(function)], copy,
                                           fn_ctx, fn_crash)
            if fn_crash is not None:
                crash = fn_crash
                break
            fp_cache[id(copy)] = fingerprint_function(copy)
        if crash is None and cached_crash is not None:
            crash = cached_crash[1]
        return optimized, ctx, crash

    def recreate(self, seed: int) -> Module:
        """Replay a logged seed (re-run with file saving, per §III-E)."""
        return self.mutator.recreate_mutant(seed)

    def _save(self, mutant: Module, seed: int) -> None:
        directory = self.config.save_dir
        if not directory:
            return
        os.makedirs(directory, exist_ok=True)
        stem = os.path.splitext(os.path.basename(self.file_name or "mutant"))[0]
        path = os.path.join(directory, f"{stem}_{seed}.ll")
        with open(path, "w") as stream:
            stream.write(print_module(mutant))
