"""Findings and logs produced by a fuzzing run.

Mirrors the paper's workflow (§III-D/E): refinement failures and optimizer
crashes are logged with the PRNG seed that created the offending mutant,
so any finding can be re-created exactly (run again with the same seed and
file-saving turned on).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

MISCOMPILATION = "miscompilation"
CRASH = "crash"


@dataclass
class Finding:
    kind: str                      # miscompilation | crash
    seed: int
    file: str = ""
    function: str = ""
    detail: str = ""
    bug_ids: List[str] = field(default_factory=list)  # attributed seeded bugs

    def to_json(self) -> str:
        return json.dumps({
            "kind": self.kind,
            "seed": self.seed,
            "file": self.file,
            "function": self.function,
            "detail": self.detail,
            "bug_ids": self.bug_ids,
        })

    @classmethod
    def from_json(cls, line: str) -> "Finding":
        data = json.loads(line)
        return cls(kind=data["kind"], seed=data["seed"],
                   file=data.get("file", ""),
                   function=data.get("function", ""),
                   detail=data.get("detail", ""),
                   bug_ids=list(data.get("bug_ids", [])))

    def summary(self) -> str:
        where = self.function or self.file or "?"
        attribution = f" [{','.join(self.bug_ids)}]" if self.bug_ids else ""
        return f"{self.kind} in {where} (seed {self.seed}){attribution}"


class BugLog:
    """Append-only JSONL log of findings, with optional file backing."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def record(self, finding: Finding) -> None:
        self.findings.append(finding)
        if self.path:
            with open(self.path, "a") as stream:
                stream.write(finding.to_json() + "\n")

    def miscompilations(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == MISCOMPILATION]

    def crashes(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == CRASH]

    def attributed_bug_ids(self) -> Dict[str, List[Finding]]:
        by_bug: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            for bug_id in finding.bug_ids:
                by_bug.setdefault(bug_id, []).append(finding)
        return by_bug

    @classmethod
    def load(cls, path: str) -> "BugLog":
        log = cls()
        with open(path) as stream:
            for line in stream:
                line = line.strip()
                if line:
                    log.findings.append(Finding.from_json(line))
        return log
