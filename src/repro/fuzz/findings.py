"""Findings and logs produced by a fuzzing run.

Mirrors the paper's workflow (§III-D/E): refinement failures and optimizer
crashes are logged with the PRNG seed that created the offending mutant,
so any finding can be re-created exactly (run again with the same seed and
file-saving turned on).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

MISCOMPILATION = "miscompilation"
CRASH = "crash"


@dataclass
class Finding:
    kind: str                      # miscompilation | crash
    seed: int
    file: str = ""
    function: str = ""
    detail: str = ""
    bug_ids: List[str] = field(default_factory=list)  # attributed seeded bugs

    def to_json(self) -> str:
        return json.dumps({
            "kind": self.kind,
            "seed": self.seed,
            "file": self.file,
            "function": self.function,
            "detail": self.detail,
            "bug_ids": self.bug_ids,
        })

    @classmethod
    def from_json(cls, line: str) -> "Finding":
        data = json.loads(line)
        return cls(kind=data["kind"], seed=data["seed"],
                   file=data.get("file", ""),
                   function=data.get("function", ""),
                   detail=data.get("detail", ""),
                   bug_ids=list(data.get("bug_ids", [])))

    def summary(self) -> str:
        where = self.function or self.file or "?"
        attribution = f" [{','.join(self.bug_ids)}]" if self.bug_ids else ""
        return f"{self.kind} in {where} (seed {self.seed}){attribution}"


class BugLog:
    """Append-only JSONL log of findings, with optional file backing.

    ``fsync=True`` makes every :meth:`record` durable against a process
    crash (flush + ``os.fsync`` per line); :meth:`load` tolerates the
    resulting failure mode — a truncated trailing line from a crash
    mid-append — by dropping the damaged tail instead of raising.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) counts each
    recorded finding under ``findings.<kind>``, feeding the throughput
    snapshots' finding totals.
    """

    def __init__(self, path: Optional[str] = None,
                 fsync: bool = False, metrics=None) -> None:
        self.path = path
        self.fsync = fsync
        self.metrics = metrics
        self.findings: List[Finding] = []

    def record(self, finding: Finding) -> None:
        self.findings.append(finding)
        if self.metrics is not None:
            self.metrics.count("findings." + finding.kind)
        if self.path:
            with open(self.path, "a") as stream:
                stream.write(finding.to_json() + "\n")
                if self.fsync:
                    stream.flush()
                    os.fsync(stream.fileno())

    def miscompilations(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == MISCOMPILATION]

    def crashes(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == CRASH]

    def attributed_bug_ids(self) -> Dict[str, List[Finding]]:
        by_bug: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            for bug_id in finding.bug_ids:
                by_bug.setdefault(bug_id, []).append(finding)
        return by_bug

    @classmethod
    def load(cls, path: str) -> "BugLog":
        """Load a findings log written by :meth:`record`.

        A record is only complete once its trailing newline is on disk,
        so a crash mid-append leaves at most one damaged *final* line;
        that line is dropped — including the case where the truncation
        split a multi-byte UTF-8 sequence, which is why the file is
        read as bytes and decoded per line rather than as a whole
        (whole-file text decode would raise ``UnicodeDecodeError``
        before any tolerance logic could run).  Damage anywhere else is
        real corruption and still raises.

        Well-formed JSON objects that are not findings — headers,
        format markers, records a newer writer may interleave (the
        corpus journals already mix text and bitcode records this way)
        — are skipped rather than treated as corruption, so old and
        new logs resume cleanly under either reader.
        """
        log = cls()
        with open(path, "rb") as stream:
            raw = stream.read()
        lines = [line for line in raw.split(b"\n") if line.strip()]
        ends_complete = raw.endswith(b"\n")
        for position, line in enumerate(lines):
            last = position == len(lines) - 1
            try:
                data = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if last:
                    break  # truncated trailing record: crash mid-append
                raise
            if last and not ends_complete:
                break  # complete-looking JSON but the newline never landed
            if not isinstance(data, dict):
                continue
            if "kind" not in data or "seed" not in data:
                continue  # header/format/foreign record, not a finding
            try:
                finding = Finding.from_json(line.decode("utf-8"))
            except KeyError:
                if last:
                    break
                raise
            log.findings.append(finding)
        return log
