"""Parallel sharded campaign execution.

The campaign's (corpus file × pipeline) job matrix is embarrassingly
parallel: every job owns a disjoint seed range (see
:data:`repro.fuzz.campaign.JOB_SEED_STRIDE`), so jobs can run on any
worker in any order and still produce the same findings.  This module
shards the matrix across a ``ProcessPoolExecutor`` and merges the
per-job :class:`ShardResult` records back into one
:class:`~repro.fuzz.campaign.CampaignReport` on the calling process.

Determinism contract
--------------------
* Per-job seeds are derived from the job's *index in the full matrix*,
  never from which worker ran it or when.
* Merging walks shard results in job-index order, so "first discovery"
  attributions (``first_file``/``first_seed``) are identical for
  ``workers=1`` and ``workers=N``.
* ``workers=1`` runs every job on the calling process — the exact
  sequential path, no pool, bit-identical results.

Fault containment
-----------------
A job that raises inside the worker is returned as a :class:`ShardResult`
with ``error`` set.  A job whose worker *process* dies (killing the whole
pool) is retried once in a fresh single-worker pool, so one poisoned job
costs one failed shard, not the campaign.  An optional global time budget
stops submitting new jobs on expiry and drains the in-flight ones; the
never-started remainder is reported as skipped.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (BrokenExecutor, CancelledError,
                                ProcessPoolExecutor, as_completed)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.parser import ParseError, parse_module
from .campaign import (CampaignConfig, CampaignReport, ShardFailure,
                       new_report)
from .corpus import generate_corpus
from .driver import FuzzConfig, FuzzDriver, StageTimings
from .findings import Finding

__all__ = ["CampaignExecutor", "ShardJob", "ShardResult", "execute_job",
           "run_jobs"]


@dataclass
class ShardJob:
    """One cell of the job matrix, picklable for pool submission."""

    job_index: int
    file_name: str
    text: str
    config: FuzzConfig
    iterations: Optional[int] = None
    time_budget: Optional[float] = None
    confirm_attributions: bool = False


@dataclass
class ShardResult:
    """What one job sends back to the main process (picklable)."""

    job_index: int
    file_name: str
    pipeline: str = ""
    worker: str = ""
    iterations: int = 0
    findings: List[Finding] = field(default_factory=list)
    # For findings[i], the bug ids that survived solo-replay confirmation
    # (== findings[i].bug_ids when confirmation was off or unneeded).
    confirmed_bug_ids: List[List[str]] = field(default_factory=list)
    dropped_functions: Dict[str, str] = field(default_factory=dict)
    timings: StageTimings = field(default_factory=StageTimings)
    parse_error: str = ""
    error: str = ""


JobRunner = Callable[[ShardJob], ShardResult]


def execute_job(job: ShardJob) -> ShardResult:
    """Run one job: parse, fuzz, confirm attributions.

    This is the loop body of the old sequential campaign, extracted so
    the sequential and sharded paths share it verbatim.
    """
    result = ShardResult(job_index=job.job_index, file_name=job.file_name,
                         pipeline=job.config.pipeline, worker=_worker_id())
    try:
        module = parse_module(job.text, job.file_name)
    except ParseError as exc:
        result.parse_error = str(exc)
        return result
    driver = FuzzDriver(module, job.config, file_name=job.file_name)
    report = driver.run(iterations=job.iterations,
                        time_budget=job.time_budget)
    result.iterations = report.iterations
    result.findings = report.findings
    result.dropped_functions = dict(report.dropped_functions)
    result.timings = report.timings
    confirm_cache: Dict[str, FuzzDriver] = {}
    for finding in report.findings:
        if job.confirm_attributions and len(finding.bug_ids) > 1:
            confirmed = [bug_id for bug_id in finding.bug_ids
                         if _confirm(module, job.file_name, bug_id, finding,
                                     job.config, confirm_cache)]
        else:
            confirmed = list(finding.bug_ids)
        result.confirmed_bug_ids.append(confirmed)
    return result


def _confirm(module, file_name: str, bug_id: str, finding: Finding,
             base_config: FuzzConfig,
             cache: Dict[str, FuzzDriver]) -> bool:
    """Replay the finding's seed with only ``bug_id`` enabled."""
    driver = cache.get(bug_id)
    if driver is None:
        solo_config = FuzzConfig(
            pipeline=base_config.pipeline,
            enabled_bugs=[bug_id],
            mutator=base_config.mutator,
            tv=base_config.tv,
            base_seed=base_config.base_seed,
        )
        driver = FuzzDriver(module, solo_config, file_name=file_name)
        cache[bug_id] = driver
    replayed = driver.run_one(finding.seed)
    return any(bug_id in f.bug_ids for f in replayed)


def _worker_id() -> str:
    return f"pid-{os.getpid()}"


def _failure(job: ShardJob, error: str) -> ShardResult:
    return ShardResult(job_index=job.job_index, file_name=job.file_name,
                       pipeline=job.config.pipeline, worker=_worker_id(),
                       error=error)


def _call_runner(runner: JobRunner, job: ShardJob) -> ShardResult:
    """In-worker wrapper: a raising job becomes a failed shard."""
    try:
        return runner(job)
    except Exception as exc:  # noqa: BLE001 — containment is the point
        return _failure(job, f"{type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# Job scheduling.
# ---------------------------------------------------------------------------


def run_jobs(jobs: Sequence[ShardJob], workers: int = 1,
             runner: JobRunner = execute_job,
             time_budget: Optional[float] = None) -> List[ShardResult]:
    """Run ``jobs`` and return their results ordered by job index.

    ``workers <= 1`` runs on the calling process; otherwise jobs are
    sharded across a process pool.  Jobs skipped by the ``time_budget``
    have no entry in the returned list.
    """
    if workers <= 1:
        return _run_sequential(jobs, runner, time_budget)
    return _run_pool(jobs, workers, runner, time_budget)


def _run_sequential(jobs: Sequence[ShardJob], runner: JobRunner,
                    time_budget: Optional[float]) -> List[ShardResult]:
    started = time.perf_counter()
    results: List[ShardResult] = []
    for job in jobs:
        if time_budget is not None \
                and time.perf_counter() - started >= time_budget:
            break
        results.append(_call_runner(runner, job))
    return results


def _run_pool(jobs: Sequence[ShardJob], workers: int, runner: JobRunner,
              time_budget: Optional[float]) -> List[ShardResult]:
    started = time.perf_counter()

    def expired() -> bool:
        return time_budget is not None \
            and time.perf_counter() - started >= time_budget

    results: Dict[int, ShardResult] = {}
    suspects: List[ShardJob] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {}
        for job in jobs:
            if expired():
                break
            futures[pool.submit(_call_runner, runner, job)] = job
        for future in as_completed(futures):
            if expired():
                # Graceful early shutdown: cancel what has not started
                # (running futures are not cancellable and get drained by
                # as_completed / pool shutdown below).
                for pending in futures:
                    pending.cancel()
            job = futures[future]
            try:
                results[job.job_index] = future.result()
            except CancelledError:
                continue  # skipped by the budget
            except BrokenExecutor:
                # The worker process died.  Every in-flight job gets this
                # error; the actual culprit is unknowable from here, so
                # each suspect is retried in isolation below.
                suspects.append(job)
            except Exception as exc:  # noqa: BLE001
                results[job.job_index] = _failure(
                    job, f"{type(exc).__name__}: {exc}")
    for job in sorted(suspects, key=lambda j: j.job_index):
        if expired():
            continue
        results[job.job_index] = _retry_in_isolation(runner, job)
    return [results[index] for index in sorted(results)]


def _retry_in_isolation(runner: JobRunner, job: ShardJob) -> ShardResult:
    """Re-run a broken-pool suspect in its own single-worker pool.

    If the job really is the one that killed the shared pool, it kills
    only its private pool this time and is recorded as a failed shard;
    innocent bystanders complete normally.
    """
    try:
        with ProcessPoolExecutor(max_workers=1) as solo:
            return solo.submit(_call_runner, runner, job).result()
    except Exception as exc:  # noqa: BLE001 — typically BrokenProcessPool
        return _failure(job, f"worker process died: "
                             f"{type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# The campaign engine.
# ---------------------------------------------------------------------------


class CampaignExecutor:
    """Shard a campaign's job matrix and merge the results.

    ``corpus`` overrides the generated corpus with explicit
    ``(file_name, text)`` pairs (the :class:`~repro.fuzz.session.Session`
    facade uses this).  ``job_runner`` swaps the per-job entry point —
    useful for fault-injection tests and custom execution strategies.
    """

    def __init__(self, config: Optional[CampaignConfig] = None,
                 corpus: Optional[Sequence[Tuple[str, str]]] = None,
                 job_runner: JobRunner = execute_job) -> None:
        self.config = config or CampaignConfig()
        self._corpus = corpus
        self._runner = job_runner

    def build_jobs(self) -> List[ShardJob]:
        """The (file × pipeline) matrix, one picklable job per cell."""
        config = self.config
        corpus = (self._corpus if self._corpus is not None
                  else generate_corpus(config.corpus_size,
                                       config.corpus_seed))
        return [
            ShardJob(job_index=job_index, file_name=file_name, text=text,
                     config=config.job_config(job_index, pipeline),
                     iterations=config.mutants_per_file,
                     time_budget=config.time_budget,
                     confirm_attributions=config.confirm_attributions)
            for job_index, (file_name, text, pipeline) in enumerate(
                (file_name, text, pipeline)
                for file_name, text in corpus
                for pipeline in config.pipelines)
        ]

    def execute(self) -> CampaignReport:
        self.config.validate()
        report = new_report(self.config)
        started = time.perf_counter()
        jobs = self.build_jobs()
        results = run_jobs(jobs, workers=self.config.workers,
                           runner=self._runner,
                           time_budget=self.config.global_time_budget)
        self._merge(report, jobs, results)
        report.elapsed = time.perf_counter() - started
        return report

    def _merge(self, report: CampaignReport, jobs: Sequence[ShardJob],
               results: Sequence[ShardResult]) -> None:
        """Fold shard results (already job-index ordered) into the report."""
        for shard in results:
            if shard.error:
                report.failed_shards.append(ShardFailure(
                    job_index=shard.job_index, file=shard.file_name,
                    pipeline=shard.pipeline, error=shard.error))
                continue
            if shard.parse_error:
                continue
            report.total_iterations += shard.iterations
            report.total_findings += len(shard.findings)
            _add_timings(report.timings, shard.timings)
            _add_timings(report.worker_timings.setdefault(shard.worker,
                                                          StageTimings()),
                         shard.timings)
            for finding, confirmed in zip(shard.findings,
                                          shard.confirmed_bug_ids):
                if not finding.bug_ids:
                    report.unattributed.append(finding)
                    continue
                for bug_id in confirmed:
                    outcome = report.outcomes.get(bug_id)
                    if outcome is None:
                        continue
                    outcome.findings += 1
                    if not outcome.found:
                        outcome.found = True
                        outcome.first_file = shard.file_name
                        outcome.first_seed = finding.seed
        report.skipped_jobs = len(jobs) - len(results)


def _add_timings(total: StageTimings, part: StageTimings) -> None:
    total.mutate += part.mutate
    total.optimize += part.optimize
    total.verify += part.verify
