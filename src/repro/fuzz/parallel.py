"""Parallel sharded campaign execution.

The campaign's (corpus file × pipeline) job matrix is embarrassingly
parallel: every job owns a disjoint seed range (see
:data:`repro.fuzz.campaign.JOB_SEED_STRIDE`), so jobs can run on any
worker in any order and still produce the same findings.  This module
shards the matrix across a ``ProcessPoolExecutor`` and merges the
per-job :class:`ShardResult` records back into one
:class:`~repro.fuzz.campaign.CampaignReport` on the calling process.

Determinism contract
--------------------
* Per-job seeds are derived from the job's *index in the full matrix*,
  never from which worker ran it or when.
* Merging walks shard results in job-index order, so "first discovery"
  attributions (``first_file``/``first_seed``) are identical for
  ``workers=1`` and ``workers=N``.
* ``workers=1`` runs every job on the calling process — the exact
  sequential path, no pool, bit-identical results.

Fault containment
-----------------
A job that raises inside the worker is returned as a :class:`ShardResult`
with ``error`` set.  A job whose worker *process* dies (killing the whole
pool) is retried once in a fresh single-worker pool, so one poisoned job
costs one failed shard, not the campaign.  An optional global time budget
stops submitting new jobs on expiry and drains the in-flight ones; the
never-started remainder is reported as skipped.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import (BrokenExecutor, CancelledError,
                                ProcessPoolExecutor, as_completed)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.parser import ParseError, parse_module
from ..obs import MetricsRegistry, tracer_for_path
from .campaign import (CampaignConfig, CampaignReport, QuarantinedJob,
                       ShardFailure, new_report)
from .driver import DeadlineExceeded, FuzzConfig, FuzzDriver, StageTimings
from .feedback import FeedbackStats
from .findings import Finding
from .seeds import generate_corpus

__all__ = ["CampaignExecutor", "KIND_NODE_LOST", "ShardJob", "ShardResult",
           "execute_job", "retry_delay", "run_jobs"]


@dataclass
class ShardJob:
    """One cell of the job matrix, picklable for pool submission."""

    job_index: int
    file_name: str
    text: str
    config: FuzzConfig
    iterations: Optional[int] = None
    time_budget: Optional[float] = None
    confirm_attributions: bool = False
    # Per-job wall-clock deadline, seconds.  Enforced cooperatively at
    # the driver's stage boundaries; the supervised scheduler also
    # hard-kills workers at ``deadline * grace_factor``.
    deadline: Optional[float] = None
    # Span tracing (repro.obs): when ``trace_dir`` is set the job writes
    # its spans to ``<trace_dir>/job-<index>.jsonl`` (one file per job —
    # concurrent workers never share a trace stream), keeping one span
    # in every ``1/trace_sample`` via deterministic sampling.
    trace_dir: Optional[str] = None
    trace_sample: float = 1.0


@dataclass
class ShardResult:
    """What one job sends back to the main process (picklable)."""

    job_index: int
    file_name: str
    pipeline: str = ""
    worker: str = ""
    # The job's driver base seed, carried for reproducibility of
    # failed/quarantined shards.
    seed: int = -1
    iterations: int = 0
    findings: List[Finding] = field(default_factory=list)
    # For findings[i], the bug ids that survived solo-replay confirmation
    # (== findings[i].bug_ids when confirmation was off or unneeded).
    confirmed_bug_ids: List[List[str]] = field(default_factory=list)
    dropped_functions: Dict[str, str] = field(default_factory=dict)
    timings: StageTimings = field(default_factory=StageTimings)
    parse_error: str = ""
    error: str = ""
    # Classifies a non-empty ``error``: "error" (raised), "hang"
    # (deadline exceeded), "crash" (worker process died), "quarantine"
    # (retired after exhausting hang/crash retries).
    failure_kind: str = ""
    attempts: int = 1
    # Per-job observability registry (repro.obs).  Hang results carry
    # the partial registry/iterations of the interrupted attempt; the
    # merge counts that partial work as *discarded*, never as campaign
    # progress (only the final successful attempt of a retried job
    # contributes to CampaignReport totals).
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    # Coverage/corpus totals (None unless the job ran with feedback on).
    feedback: Optional[FeedbackStats] = None


JobRunner = Callable[[ShardJob], ShardResult]

# Supervisor-side results never produced by a worker use this marker.
_KIND_HANG = "hang"
_KIND_CRASH = "crash"
_KIND_QUARANTINE = "quarantine"
# A distributed campaign retired the job after losing every node that
# leased it (see repro.fuzz.dist).
KIND_NODE_LOST = "node_lost"


def retry_delay(backoff: float, attempt: int, jitter: float = 0.0,
                jitter_seed: str = "", job_index: int = 0) -> float:
    """The backoff delay before retry ``attempt + 1`` of a job.

    Exponential in the attempt number (``backoff * 2**(attempt - 1)``),
    optionally stretched by a *decorrelation jitter* factor in
    ``[1, 1 + jitter)`` so concurrent retries de-synchronize.  The
    jitter is a pure function of ``(jitter_seed, job_index, attempt)``
    — campaigns seed it with the campaign fingerprint, so the same
    campaign always jitters the same way and stays reproducible.
    """
    delay = backoff * (2 ** (attempt - 1))
    if jitter <= 0.0 or delay <= 0.0:
        return delay
    import hashlib
    digest = hashlib.sha256(
        f"{jitter_seed}:{job_index}:{attempt}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0, 1)
    return delay * (1.0 + jitter * unit)


def execute_job(job: ShardJob) -> ShardResult:
    """Run one job: parse, fuzz, confirm attributions.

    This is the loop body of the old sequential campaign, extracted so
    the sequential and sharded paths share it verbatim.  A cooperative
    ``job.deadline`` covers the whole job — fuzzing *and* attribution
    confirmation — and turns an overrun into a ``hang`` shard.
    """
    result = ShardResult(job_index=job.job_index, file_name=job.file_name,
                         pipeline=job.config.pipeline, worker=_worker_id(),
                         seed=job.config.base_seed)
    try:
        module = parse_module(job.text, job.file_name)
    except ParseError as exc:
        result.parse_error = str(exc)
        return result
    deadline_at = (None if job.deadline is None
                   else time.monotonic() + job.deadline)
    tracer = None
    if job.trace_dir:
        os.makedirs(job.trace_dir, exist_ok=True)
        tracer = tracer_for_path(
            os.path.join(job.trace_dir, f"job-{job.job_index:04d}.jsonl"),
            sample_rate=job.trace_sample)
    driver = None
    try:
        driver = FuzzDriver(module, job.config, file_name=job.file_name,
                            metrics=result.metrics, tracer=tracer)
        driver.deadline_at = deadline_at
        report = driver.run(iterations=job.iterations,
                            time_budget=job.time_budget)
        result.iterations = report.iterations
        result.findings = report.findings
        result.dropped_functions = dict(report.dropped_functions)
        result.timings = report.timings
        result.feedback = report.feedback
        confirm_cache: Dict[str, FuzzDriver] = {}
        for finding in report.findings:
            driver.check_deadline()
            if job.confirm_attributions and len(finding.bug_ids) > 1:
                confirmed = [bug_id for bug_id in finding.bug_ids
                             if _confirm(module, job.file_name, bug_id,
                                         finding, job.config, confirm_cache,
                                         deadline_at)]
            else:
                confirmed = list(finding.bug_ids)
            result.confirmed_bug_ids.append(confirmed)
    except DeadlineExceeded as exc:
        # The hang result carries the interrupted attempt's partial
        # progress (iterations, timings, metrics) so the supervisor can
        # account for discarded work — the merge must NOT count it as
        # campaign progress, or retried jobs would be double-counted.
        return ShardResult(job_index=job.job_index, file_name=job.file_name,
                           pipeline=job.config.pipeline, worker=_worker_id(),
                           seed=job.config.base_seed,
                           iterations=driver.report.iterations,
                           timings=driver.report.timings,
                           metrics=result.metrics,
                           error=f"{exc} (deadline {job.deadline}s)",
                           failure_kind=_KIND_HANG)
    finally:
        if driver is not None:
            driver.close()
        if tracer is not None:
            tracer.close()
    return result


def _confirm(module, file_name: str, bug_id: str, finding: Finding,
             base_config: FuzzConfig,
             cache: Dict[str, FuzzDriver],
             deadline_at: Optional[float] = None) -> bool:
    """Replay the finding's seed with only ``bug_id`` enabled."""
    driver = cache.get(bug_id)
    if driver is None:
        solo_config = FuzzConfig(
            pipeline=base_config.pipeline,
            enabled_bugs=[bug_id],
            mutator=base_config.mutator,
            tv=base_config.tv,
            base_seed=base_config.base_seed,
        )
        driver = FuzzDriver(module, solo_config, file_name=file_name)
        driver.deadline_at = deadline_at
        cache[bug_id] = driver
    replayed = driver.run_one(finding.seed)
    return any(bug_id in f.bug_ids for f in replayed)


def _worker_id() -> str:
    return f"pid-{os.getpid()}"


def _failure(job: ShardJob, error: str, kind: str = "") -> ShardResult:
    return ShardResult(job_index=job.job_index, file_name=job.file_name,
                       pipeline=job.config.pipeline, worker=_worker_id(),
                       seed=job.config.base_seed, error=error,
                       failure_kind=kind)


def _call_runner(runner: JobRunner, job: ShardJob) -> ShardResult:
    """In-worker wrapper: a raising job becomes a failed shard."""
    try:
        return runner(job)
    except Exception as exc:  # noqa: BLE001 — containment is the point
        return _failure(job, f"{type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# Job scheduling.
# ---------------------------------------------------------------------------


ResultSink = Optional[Callable[[ShardResult], None]]
StopFlag = Optional[Callable[[], bool]]


def run_jobs(jobs: Sequence[ShardJob], workers: int = 1,
             runner: JobRunner = execute_job,
             time_budget: Optional[float] = None,
             grace_factor: float = 2.0,
             max_retries: int = 0,
             retry_backoff: float = 0.25,
             retry_jitter: float = 0.0,
             jitter_seed: str = "",
             on_result: ResultSink = None,
             should_stop: StopFlag = None,
             isolate: bool = False) -> List[ShardResult]:
    """Run ``jobs`` and return their results ordered by job index.

    ``workers <= 1`` runs on the calling process; otherwise jobs are
    sharded across worker processes.  Jobs skipped by the
    ``time_budget`` (or a true ``should_stop``) have no entry in the
    returned list.  ``on_result`` is invoked on the calling process for
    every *terminal* result, in completion order — the checkpoint
    journal hangs off this hook.

    Two multi-worker schedulers exist: the plain process *pool* (the
    fast path), and a process-per-job *supervised* scheduler that adds
    a hard watchdog kill at ``deadline * grace_factor`` plus bounded
    hang/crash retries.  The supervised path engages automatically when
    any job carries a deadline or ``max_retries > 0``; ``isolate=True``
    forces it even for ``workers=1`` (distributed node runners use this
    so a single-worker node still gets the hard watchdog and crash
    containment of process-per-job execution).

    ``retry_jitter``/``jitter_seed`` add deterministic decorrelation
    jitter to the retry backoff (see :func:`retry_delay`).
    """
    supervised = (max_retries > 0
                  or any(job.deadline is not None for job in jobs))
    if workers <= 1 and not (isolate and jobs):
        return _run_sequential(jobs, runner, time_budget, on_result,
                               should_stop)
    if supervised or isolate:
        return _run_supervised(jobs, max(1, workers), runner, time_budget,
                               grace_factor, max_retries, retry_backoff,
                               on_result, should_stop,
                               retry_jitter=retry_jitter,
                               jitter_seed=jitter_seed)
    return _run_pool(jobs, workers, runner, time_budget, on_result,
                     should_stop)


def _emit(results: Dict[int, ShardResult], on_result: ResultSink,
          result: ShardResult) -> None:
    results[result.job_index] = result
    if on_result is not None:
        on_result(result)


def _run_sequential(jobs: Sequence[ShardJob], runner: JobRunner,
                    time_budget: Optional[float],
                    on_result: ResultSink = None,
                    should_stop: StopFlag = None) -> List[ShardResult]:
    started = time.perf_counter()
    results: Dict[int, ShardResult] = {}
    for job in jobs:
        if time_budget is not None \
                and time.perf_counter() - started >= time_budget:
            break
        if should_stop is not None and should_stop():
            break
        _emit(results, on_result, _call_runner(runner, job))
    return [results[index] for index in sorted(results)]


def _init_worker_signals() -> None:
    """Pool/supervised worker initializer: the supervisor owns signals.

    A Ctrl-C hits the whole foreground process group; workers must not
    die mid-job or the graceful drain would record phantom crashes, so
    SIGINT is ignored.  SIGTERM goes back to the default action —
    forked workers inherit the supervisor's drain handler, which would
    otherwise shrug off the watchdog's ``terminate()``.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # non-main thread or exotic platform
        pass


def _run_pool(jobs: Sequence[ShardJob], workers: int, runner: JobRunner,
              time_budget: Optional[float],
              on_result: ResultSink = None,
              should_stop: StopFlag = None) -> List[ShardResult]:
    started = time.perf_counter()

    def expired() -> bool:
        if time_budget is not None \
                and time.perf_counter() - started >= time_budget:
            return True
        return should_stop is not None and should_stop()

    results: Dict[int, ShardResult] = {}
    suspects: List[ShardJob] = []
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_init_worker_signals) as pool:
        futures = {}
        for job in jobs:
            if expired():
                break
            futures[pool.submit(_call_runner, runner, job)] = job
        cancelled = False
        for future in as_completed(futures):
            if expired() and not cancelled:
                # Graceful early shutdown: cancel what has not started
                # (running futures are not cancellable and get drained by
                # as_completed / pool shutdown below).  Once is enough —
                # cancelling an already-cancelled/running future is a
                # no-op, so re-walking the set per completion would only
                # add O(n^2) churn.
                cancelled = True
                for pending in futures:
                    pending.cancel()
            job = futures[future]
            try:
                _emit(results, on_result, future.result())
            except CancelledError:
                continue  # skipped by the budget
            except BrokenExecutor:
                # The worker process died.  Every in-flight job gets this
                # error; the actual culprit is unknowable from here, so
                # each suspect is retried in isolation below.
                suspects.append(job)
            except Exception as exc:  # noqa: BLE001
                _emit(results, on_result,
                      _failure(job, f"{type(exc).__name__}: {exc}"))
    for job in sorted(suspects, key=lambda j: j.job_index):
        if expired():
            continue
        _emit(results, on_result, _retry_in_isolation(runner, job))
    return [results[index] for index in sorted(results)]


def _retry_in_isolation(runner: JobRunner, job: ShardJob) -> ShardResult:
    """Re-run a broken-pool suspect in its own single-worker pool.

    If the job really is the one that killed the shared pool, it kills
    only its private pool this time and is recorded as a failed shard;
    innocent bystanders complete normally.
    """
    try:
        with ProcessPoolExecutor(max_workers=1,
                                 initializer=_init_worker_signals) as solo:
            return solo.submit(_call_runner, runner, job).result()
    except Exception as exc:  # noqa: BLE001 — typically BrokenProcessPool
        return _failure(job, "worker process died: "
                             f"{type(exc).__name__}: {exc}",
                        kind=_KIND_CRASH)


# ---------------------------------------------------------------------------
# The supervised scheduler: process-per-job with watchdog + retries.
# ---------------------------------------------------------------------------


def _supervised_worker(runner: JobRunner, job: ShardJob, conn) -> None:
    """Worker entry: run one job, ship the result back, exit."""
    _init_worker_signals()
    result = _call_runner(runner, job)
    try:
        conn.send(result)
    finally:
        conn.close()


@dataclass
class _Running:
    job: ShardJob
    attempt: int
    conn: object
    kill_at: Optional[float]


def _run_supervised(jobs: Sequence[ShardJob], workers: int,
                    runner: JobRunner, time_budget: Optional[float],
                    grace_factor: float, max_retries: int,
                    retry_backoff: float,
                    on_result: ResultSink = None,
                    should_stop: StopFlag = None,
                    retry_jitter: float = 0.0,
                    jitter_seed: str = "") -> List[ShardResult]:
    """Process-per-job scheduling with hard hang containment.

    Unlike the shared pool, every job owns a dedicated worker process
    whose start time the supervisor knows, so a worker that blows
    through ``deadline * grace_factor`` is killed (``terminate`` then
    ``kill``) and the job is recorded as a ``hang`` — the cooperative
    in-worker deadline is the first line of defense, this timer is the
    backstop for jobs stuck inside a single stage.  Jobs that hang or
    kill their worker are retried with exponential backoff up to
    ``max_retries`` times, then retired as ``quarantine`` results.
    """
    import multiprocessing as mp
    from multiprocessing.connection import wait as conn_wait

    ctx = mp.get_context()
    started = time.perf_counter()

    def stopping() -> bool:
        if time_budget is not None \
                and time.perf_counter() - started >= time_budget:
            return True
        return should_stop is not None and should_stop()

    pending = deque((job, 1) for job in jobs)
    delayed: List[Tuple[float, ShardJob, int]] = []
    running: Dict[object, _Running] = {}
    results: Dict[int, ShardResult] = {}

    def settle_failure(job: ShardJob, attempt: int, kind: str,
                       detail: str,
                       partial: Optional[ShardResult] = None) -> None:
        """Retry a hang/crash while budget remains, else retire it.

        ``partial`` is the failed attempt's shard result (cooperative
        hangs ship one back with partial progress); its iteration count
        and metrics are carried onto the terminal result so the merge
        can account for discarded work without counting it as progress.
        """
        if attempt <= max_retries:
            delay = retry_delay(retry_backoff, attempt, retry_jitter,
                                jitter_seed, job.job_index)
            delayed.append((time.perf_counter() + delay, job, attempt + 1))
            return
        terminal_kind = kind if max_retries == 0 else _KIND_QUARANTINE
        if terminal_kind == _KIND_QUARANTINE:
            detail = (f"quarantined after {attempt} attempts; "
                      f"last failure ({kind}): {detail}")
        result = _failure(job, detail, kind=terminal_kind)
        result.attempts = attempt
        if partial is not None:
            result.iterations = partial.iterations
            result.timings = partial.timings
            result.metrics = partial.metrics
        _emit(results, on_result, result)

    def reap(proc, record: _Running, now: float) -> bool:
        """Handle one running worker; True if it left the running set."""
        if record.conn.poll():
            try:
                result = record.conn.recv()
            except (EOFError, OSError):
                result = None
            record.conn.close()
            proc.join()
            del running[proc]
            if result is None:
                settle_failure(record.job, record.attempt, _KIND_CRASH,
                               "worker process died mid-result")
            elif result.failure_kind == _KIND_HANG:
                result.attempts = record.attempt
                settle_failure(record.job, record.attempt, _KIND_HANG,
                               result.error, partial=result)
            else:
                result.attempts = record.attempt
                _emit(results, on_result, result)
            return True
        if not proc.is_alive():
            exitcode = proc.exitcode
            record.conn.close()
            proc.join()
            del running[proc]
            settle_failure(record.job, record.attempt, _KIND_CRASH,
                           f"worker process died (exit code {exitcode})")
            return True
        if record.kill_at is not None and now >= record.kill_at:
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
            record.conn.close()
            del running[proc]
            settle_failure(
                record.job, record.attempt, _KIND_HANG,
                "worker killed after exceeding deadline "
                f"({record.job.deadline}s x grace {grace_factor})")
            return True
        return False

    while pending or delayed or running:
        now = time.perf_counter()
        if stopping():
            # Drain mode: nothing new starts, retries are abandoned
            # (the jobs re-run on resume), in-flight workers finish
            # under the watchdog.
            pending.clear()
            delayed.clear()
        else:
            ready = [entry for entry in delayed if entry[0] <= now]
            for entry in ready:
                delayed.remove(entry)
                pending.append((entry[1], entry[2]))
            while pending and len(running) < workers:
                job, attempt = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_supervised_worker,
                                   args=(runner, job, child_conn))
                proc.daemon = True
                proc.start()
                child_conn.close()
                kill_at = (None if job.deadline is None
                           else time.perf_counter()
                           + job.deadline * grace_factor)
                running[proc] = _Running(job=job, attempt=attempt,
                                         conn=parent_conn, kill_at=kill_at)
        now = time.perf_counter()
        for proc in list(running):
            reap(proc, running[proc], now)
        if running:
            conn_wait([record.conn for record in running.values()],
                      timeout=0.02)
        elif delayed and not pending:
            time.sleep(min(0.02, max(0.0, min(entry[0] for entry in delayed)
                                     - time.perf_counter())))
    return [results[index] for index in sorted(results)]


# ---------------------------------------------------------------------------
# The campaign engine.
# ---------------------------------------------------------------------------


class _StopState:
    """Shared flag between the signal handlers and the schedulers."""

    def __init__(self) -> None:
        self.requested = False
        self.signal_name = ""

    def request(self, signal_name: str = "") -> None:
        self.requested = True
        if signal_name and not self.signal_name:
            self.signal_name = signal_name


class _SignalGuard:
    """Install SIGINT/SIGTERM drain handlers for the execute() scope.

    Only the main thread may install handlers; elsewhere (an executor
    driven from a worker thread) the guard degrades to a no-op and
    graceful shutdown remains available via
    :meth:`CampaignExecutor.request_stop`.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, stop: _StopState) -> None:
        self._stop = stop
        self._previous: Dict[int, object] = {}

    def __enter__(self) -> "_SignalGuard":
        if threading.current_thread() is not threading.main_thread():
            return self
        for signum in self.SIGNALS:
            try:
                self._previous[signum] = signal.signal(
                    signum, self._handle)
            except (ValueError, OSError):
                pass
        return self

    def _handle(self, signum, _frame) -> None:
        self._stop.request(signal.Signals(signum).name)

    def __exit__(self, *_exc) -> None:
        for signum, handler in self._previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError, TypeError):
                pass
        self._previous.clear()


class CampaignExecutor:
    """Shard a campaign's job matrix and merge the results.

    ``corpus`` overrides the generated corpus with explicit
    ``(file_name, text)`` pairs (the :class:`~repro.fuzz.session.Session`
    facade uses this).  ``job_runner`` swaps the per-job entry point —
    useful for fault-injection tests and custom execution strategies.

    With ``config.checkpoint_dir`` set, every terminal shard result is
    journaled durably as it completes, and :meth:`execute` with
    ``resume=True`` skips already-journaled jobs, merging their cached
    results in job-index order — so a killed campaign resumes with
    findings identical to an uninterrupted run.  SIGINT/SIGTERM (or
    :meth:`request_stop`) triggers a graceful drain: no new jobs start,
    in-flight ones finish and are journaled, and the returned report is
    a valid partial state with ``interrupted`` set.
    """

    def __init__(self, config: Optional[CampaignConfig] = None,
                 corpus: Optional[Sequence[Tuple[str, str]]] = None,
                 job_runner: JobRunner = execute_job) -> None:
        self.config = config or CampaignConfig()
        self._corpus = corpus
        self._runner = job_runner
        self._stop = _StopState()

    def request_stop(self) -> None:
        """Ask :meth:`execute` to drain and return (thread-safe).

        Sticky: a request made before ``execute`` starts still applies
        (the run drains immediately, journaling nothing new).
        """
        self._stop.request()

    def build_jobs(self) -> List[ShardJob]:
        """The (file × pipeline) matrix, one picklable job per cell."""
        config = self.config
        corpus = (self._corpus if self._corpus is not None
                  else generate_corpus(config.corpus_size,
                                       config.corpus_seed))
        return [
            ShardJob(job_index=job_index, file_name=file_name, text=text,
                     config=config.job_config(job_index, pipeline),
                     iterations=config.mutants_per_file,
                     time_budget=config.time_budget,
                     confirm_attributions=config.confirm_attributions,
                     deadline=config.job_deadline,
                     trace_dir=config.trace_dir,
                     trace_sample=config.trace_sample)
            for job_index, (file_name, text, pipeline) in enumerate(
                (file_name, text, pipeline)
                for file_name, text in corpus
                for pipeline in config.pipelines)
        ]

    def execute(self, resume: bool = False) -> CampaignReport:
        from .checkpoint import CheckpointJournal, jobs_fingerprint
        config = self.config
        config.validate()
        if resume and not config.checkpoint_dir:
            raise ValueError("resume=True requires config.checkpoint_dir")
        if config.dist is not None:
            from .dist import run_coordinator
            return run_coordinator(self, resume=resume)
        report = new_report(config)
        started = time.perf_counter()
        jobs = self.build_jobs()
        journal: Optional[CheckpointJournal] = None
        cached: Dict[int, ShardResult] = {}
        fingerprint = ""
        if config.checkpoint_dir or config.retry_jitter > 0.0:
            fingerprint = jobs_fingerprint(jobs)
        if config.checkpoint_dir:
            journal = CheckpointJournal(config.checkpoint_dir)
            cached = journal.start(fingerprint,
                                   total_jobs=len(jobs), resume=resume)
        todo = [job for job in jobs if job.job_index not in cached]
        stop = self._stop
        try:
            with _SignalGuard(stop):
                results = run_jobs(
                    todo, workers=config.workers, runner=self._runner,
                    time_budget=config.global_time_budget,
                    grace_factor=config.grace_factor,
                    max_retries=config.max_job_retries,
                    retry_backoff=config.retry_backoff,
                    retry_jitter=config.retry_jitter,
                    jitter_seed=fingerprint,
                    on_result=journal.append if journal else None,
                    should_stop=lambda: stop.requested)
        finally:
            if journal is not None:
                journal.close()
        merged = sorted(list(cached.values()) + list(results),
                        key=lambda result: result.job_index)
        self._merge(report, jobs, merged)
        report.resumed_jobs = len(cached)
        report.interrupted = stop.requested
        report.interrupt_signal = stop.signal_name
        report.elapsed = time.perf_counter() - started
        return report

    def _merge(self, report: CampaignReport, jobs: Sequence[ShardJob],
               results: Sequence[ShardResult]) -> None:
        """Fold shard results (already job-index ordered) into the report.

        Accounting contract: each job contributes to the campaign totals
        (``total_iterations``, metrics, timings) through its **final
        successful attempt only**.  Failed/quarantined shards may carry
        partial progress from their last attempt (cooperative hangs ship
        it back); that work is recorded as
        ``campaign.retry.discarded_iterations`` — never added to
        ``total_iterations`` — so a retried job is not double-counted.
        """
        metrics = report.metrics
        for shard in results:
            if shard.attempts > 1:
                metrics.count("campaign.retry.attempts",
                              shard.attempts - 1)
            if shard.failure_kind == _KIND_QUARANTINE:
                if shard.iterations:
                    metrics.count("campaign.retry.discarded_iterations",
                                  shard.iterations)
                metrics.count("campaign.quarantined")
                report.quarantined.append(QuarantinedJob(
                    job_index=shard.job_index, file=shard.file_name,
                    pipeline=shard.pipeline, seed=shard.seed,
                    attempts=shard.attempts, error=shard.error))
                continue
            if shard.error:
                if shard.iterations:
                    metrics.count("campaign.retry.discarded_iterations",
                                  shard.iterations)
                metrics.count("campaign.failed_shards")
                report.failed_shards.append(ShardFailure(
                    job_index=shard.job_index, file=shard.file_name,
                    pipeline=shard.pipeline, error=shard.error,
                    kind=shard.failure_kind or "error"))
                continue
            if shard.parse_error:
                metrics.count("campaign.parse_failures")
                report.parse_failures.append(ShardFailure(
                    job_index=shard.job_index, file=shard.file_name,
                    pipeline=shard.pipeline, error=shard.parse_error,
                    kind="parse"))
                continue
            metrics.count("campaign.jobs.completed")
            metrics.merge(shard.metrics)
            if shard.feedback is not None:
                if report.feedback is None:
                    report.feedback = FeedbackStats()
                report.feedback.merge(shard.feedback)
            report.total_iterations += shard.iterations
            report.total_findings += len(shard.findings)
            _add_timings(report.timings, shard.timings)
            _add_timings(report.worker_timings.setdefault(shard.worker,
                                                          StageTimings()),
                         shard.timings)
            for finding, confirmed in zip(shard.findings,
                                          shard.confirmed_bug_ids):
                if not finding.bug_ids:
                    report.unattributed.append(finding)
                    continue
                for bug_id in confirmed:
                    outcome = report.outcomes.get(bug_id)
                    if outcome is None:
                        continue
                    outcome.findings += 1
                    if not outcome.found:
                        outcome.found = True
                        outcome.first_file = shard.file_name
                        outcome.first_seed = finding.seed
        report.skipped_jobs = len(jobs) - len(results)
        if report.skipped_jobs:
            metrics.count("campaign.skipped_jobs", report.skipped_jobs)


def _add_timings(total: StageTimings, part: StageTimings) -> None:
    total.mutate += part.mutate
    total.optimize += part.optimize
    total.verify += part.verify
