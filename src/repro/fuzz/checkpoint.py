"""Checkpoint journal for fault-tolerant campaigns.

A campaign that runs for days must survive a crash, an OOM kill, or a
Ctrl-C without losing completed work.  This module provides a durable,
append-only JSONL journal of completed :class:`~repro.fuzz.parallel.ShardResult`
records, keyed by a deterministic *campaign fingerprint* (a hash of the
job matrix: corpus texts + per-job configs), so a resumed campaign can

* refuse to merge results produced by a *different* campaign
  (:class:`CheckpointMismatch`), and
* skip every already-journaled job index, producing a final report
  identical to an uninterrupted run (merging stays job-index ordered —
  the determinism contract of :mod:`repro.fuzz.parallel` is preserved
  across a kill/resume cycle).

Durability model
----------------
Each record is one JSON line, written with flush + ``os.fsync`` before
:meth:`CheckpointJournal.append` returns.  A record is only *complete*
once its trailing newline is on disk, so the single failure mode of a
crash mid-append is a damaged **final** line.  :meth:`CheckpointJournal.start`
detects that (unparsable tail, or a parsable tail missing its newline),
drops the damaged record, and truncates the file back to the last valid
byte — the damaged job simply re-runs.  The fingerprint is excluded from
worker-count and scheduling knobs, so a campaign may be resumed with a
different ``workers``/deadline setting and still match.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import Dict, IO, Optional, Sequence

from ..obs import MetricsRegistry
from .driver import StageTimings
from .feedback import FeedbackStats
from .findings import Finding

__all__ = ["CheckpointError", "CheckpointMismatch", "CheckpointJournal",
           "jobs_fingerprint", "result_to_dict", "result_from_dict"]

JOURNAL_NAME = "journal.jsonl"
JOURNAL_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint journal cannot be used (I/O or format problem)."""


class CheckpointMismatch(CheckpointError):
    """The journal on disk belongs to a different campaign.

    Raised on resume when the stored fingerprint does not match the
    fingerprint of the job matrix about to run: merging would silently
    mix findings from two different configurations/corpora.
    """


def jobs_fingerprint(jobs: Sequence) -> str:
    """Deterministic fingerprint of a job matrix (config + corpus hash).

    Depends only on what each job *computes* — index, seed file text,
    per-job :class:`~repro.fuzz.driver.FuzzConfig`, iteration/time
    budget, confirmation mode.  Deliberately independent of scheduling
    (worker count, deadlines, retry policy) and of operational path
    knobs (``feedback.corpus_dir`` — where the corpus journal lands
    never changes what a job computes), so operational tuning never
    invalidates completed work.
    """
    digest = hashlib.sha256()
    for job in jobs:
        config = asdict(job.config)
        feedback = config.get("feedback")
        if isinstance(feedback, dict):
            feedback["corpus_dir"] = None
        payload = {
            "index": job.job_index,
            "file": job.file_name,
            "text_sha": hashlib.sha256(job.text.encode()).hexdigest(),
            "config": config,
            "iterations": job.iterations,
            "time_budget": job.time_budget,
            "confirm": job.confirm_attributions,
        }
        digest.update(json.dumps(payload, sort_keys=True,
                                 default=str).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def result_to_dict(result) -> dict:
    """A JSON-safe dict for one :class:`ShardResult` (inverse below).

    Doubles as the wire format of the distributed queue's result files
    (:mod:`repro.fuzz.dist`): a result parked by a node and a result
    journaled by the checkpoint are the same record, which is what lets
    the coordinator journal collected results straight into the
    ordinary checkpoint and resume across the two transports.
    """
    return {
        "kind": "shard",
        "job_index": result.job_index,
        "file_name": result.file_name,
        "pipeline": result.pipeline,
        "worker": result.worker,
        "seed": result.seed,
        "iterations": result.iterations,
        "findings": [json.loads(f.to_json()) for f in result.findings],
        "confirmed_bug_ids": result.confirmed_bug_ids,
        "dropped_functions": result.dropped_functions,
        "timings": {"mutate": result.timings.mutate,
                    "optimize": result.timings.optimize,
                    "verify": result.timings.verify},
        "parse_error": result.parse_error,
        "error": result.error,
        "failure_kind": result.failure_kind,
        "attempts": result.attempts,
        "metrics": result.metrics.to_dict(),
        "feedback": (result.feedback.to_dict()
                     if result.feedback is not None else None),
    }


def result_from_dict(data: dict):
    """Rehydrate a :class:`ShardResult` journaled by :func:`result_to_dict`."""
    from .parallel import ShardResult
    timings = data.get("timings", {})
    return ShardResult(
        job_index=data["job_index"],
        file_name=data.get("file_name", ""),
        pipeline=data.get("pipeline", ""),
        worker=data.get("worker", ""),
        seed=data.get("seed", -1),
        iterations=data.get("iterations", 0),
        findings=[Finding.from_json(json.dumps(f))
                  for f in data.get("findings", [])],
        confirmed_bug_ids=[list(ids)
                           for ids in data.get("confirmed_bug_ids", [])],
        dropped_functions=dict(data.get("dropped_functions", {})),
        timings=StageTimings(mutate=timings.get("mutate", 0.0),
                             optimize=timings.get("optimize", 0.0),
                             verify=timings.get("verify", 0.0)),
        parse_error=data.get("parse_error", ""),
        error=data.get("error", ""),
        failure_kind=data.get("failure_kind", ""),
        attempts=data.get("attempts", 1),
        # Journals written before metrics existed lack the key; an empty
        # registry merges as a no-op, so old checkpoints stay resumable.
        metrics=MetricsRegistry.from_dict(data.get("metrics", {})),
        feedback=(FeedbackStats.from_dict(data["feedback"])
                  if data.get("feedback") else None),
    )


class CheckpointJournal:
    """Durable JSONL journal of completed shards in a checkpoint dir.

    Lifecycle: :meth:`start` validates/initializes the journal and
    returns the cached results (``{}`` unless resuming), then
    :meth:`append` is called once per *terminal* shard result, and
    :meth:`close` releases the stream.  ``start``/``append``/``close``
    all run on the supervising process only — workers never touch the
    journal, so a worker kill cannot damage it.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, JOURNAL_NAME)
        self.dropped_records = 0
        self._stream: Optional[IO[str]] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, fingerprint: str, total_jobs: int,
              resume: bool = False) -> Dict[int, object]:
        """Open the journal for appending; return cached shard results.

        Fresh start (``resume=False``) truncates any existing journal.
        Resume reads it (tolerating a damaged tail), verifies the
        fingerprint, truncates the damaged tail away so subsequent
        appends start on a clean line, and returns the journaled results
        keyed by job index.
        """
        os.makedirs(self.directory, exist_ok=True)
        cached: Dict[int, object] = {}
        if resume and os.path.exists(self.path):
            cached, valid_bytes = self._read(fingerprint)
            with open(self.path, "a") as stream:
                stream.truncate(valid_bytes)
            self._stream = open(self.path, "a")
        else:
            self._stream = open(self.path, "w")
            header = {"kind": "header", "version": JOURNAL_VERSION,
                      "fingerprint": fingerprint, "total_jobs": total_jobs}
            self._write_line(json.dumps(header, sort_keys=True))
        return cached

    def append(self, result) -> None:
        """Durably journal one terminal shard result (fsync'd)."""
        if self._stream is None:
            raise CheckpointError("journal is not open (call start first)")
        self._write_line(json.dumps(result_to_dict(result), sort_keys=True))

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _write_line(self, line: str) -> None:
        assert self._stream is not None
        self._stream.write(line + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def _read(self, fingerprint: str):
        """Parse the journal; return (results by index, valid byte count)."""
        with open(self.path, "rb") as stream:
            raw = stream.read()
        results: Dict[int, object] = {}
        valid_bytes = 0
        saw_header = False
        offset = 0
        for piece in raw.splitlines(keepends=True):
            offset += len(piece)
            complete = piece.endswith(b"\n")
            stripped = piece.strip()
            if not stripped:
                if complete:
                    valid_bytes = offset
                continue
            try:
                data = json.loads(stripped.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                data = None
            if not isinstance(data, dict) or not complete:
                # Damaged or newline-less record: a crash mid-append.
                # Drop it (the job re-runs) and do not advance
                # ``valid_bytes``, so a damaged tail is truncated away
                # before any new append lands.
                self.dropped_records += 1
                continue
            kind = data.get("kind")
            if not saw_header:
                if kind != "header":
                    raise CheckpointError(
                        f"{self.path}: first record is not a journal header")
                if data.get("fingerprint") != fingerprint:
                    raise CheckpointMismatch(
                        f"{self.path} belongs to a different campaign "
                        f"(fingerprint {data.get('fingerprint', '?')[:12]} "
                        f"!= {fingerprint[:12]}); use a fresh checkpoint "
                        "directory or drop --resume")
                saw_header = True
            elif kind == "shard":
                try:
                    result = result_from_dict(data)
                except (KeyError, TypeError):
                    self.dropped_records += 1
                    continue
                results[result.job_index] = result
            valid_bytes = offset
        if not saw_header:
            raise CheckpointError(
                f"{self.path}: no usable journal header; the file is "
                "damaged beyond resume — use a fresh checkpoint directory")
        return results, valid_bytes
