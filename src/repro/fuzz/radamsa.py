"""A structure-blind mutator in the style of Radamsa (paper §II).

The paper's preliminary study found that byte-level mutation of LLVM IR
text produces mutants that are (a) almost always invalid, and (b) almost
always boring when valid (a renamed variable, whitespace churn).  This
module implements the classic Radamsa-style heuristics so the study can
be reproduced against our parser/verifier, alongside a classifier for the
invalid / boring / interesting trichotomy.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..ir.parser import ParseError, parse_module
from ..ir.printer import print_module
from ..ir.verifier import is_valid_module

_NUMBER = re.compile(rb"-?\d+")
_TOKEN = re.compile(rb"[%@]?[A-Za-z_.][A-Za-z0-9_.]*|-?\d+|[^\sA-Za-z0-9]")


def _flip_bit(data: bytearray, rng: random.Random) -> None:
    if not data:
        return
    index = rng.randrange(len(data))
    data[index] ^= 1 << rng.randrange(8)


def _drop_byte(data: bytearray, rng: random.Random) -> None:
    if not data:
        return
    del data[rng.randrange(len(data))]


def _insert_byte(data: bytearray, rng: random.Random) -> None:
    index = rng.randrange(len(data) + 1)
    data.insert(index, rng.randrange(256))


def _repeat_byte(data: bytearray, rng: random.Random) -> None:
    if not data:
        return
    index = rng.randrange(len(data))
    count = rng.choice([2, 4, 8, 16])
    data[index:index] = bytes([data[index]]) * count


def _mutate_number(data: bytearray, rng: random.Random) -> None:
    """Radamsa's signature trick: perturb a textual integer."""
    matches = list(_NUMBER.finditer(bytes(data)))
    if not matches:
        return
    match = rng.choice(matches)
    value = int(match.group())
    mutated = rng.choice([
        value + 1, value - 1, value * 2, -value,
        2 ** rng.choice([7, 8, 15, 16, 31, 32, 63, 64]) - rng.choice([0, 1]),
        rng.randrange(-(2 ** 32), 2 ** 32),
    ])
    data[match.start():match.end()] = str(mutated).encode()


def _swap_lines(data: bytearray, rng: random.Random) -> None:
    lines = bytes(data).split(b"\n")
    if len(lines) < 2:
        return
    i, j = rng.randrange(len(lines)), rng.randrange(len(lines))
    lines[i], lines[j] = lines[j], lines[i]
    data[:] = b"\n".join(lines)


def _duplicate_line(data: bytearray, rng: random.Random) -> None:
    lines = bytes(data).split(b"\n")
    index = rng.randrange(len(lines))
    lines.insert(index, lines[index])
    data[:] = b"\n".join(lines)


def _drop_line(data: bytearray, rng: random.Random) -> None:
    lines = bytes(data).split(b"\n")
    if len(lines) < 2:
        return
    del lines[rng.randrange(len(lines))]
    data[:] = b"\n".join(lines)


def _swap_tokens(data: bytearray, rng: random.Random) -> None:
    matches = list(_TOKEN.finditer(bytes(data)))
    if len(matches) < 2:
        return
    a, b = rng.sample(matches, 2)
    if a.start() > b.start():
        a, b = b, a
    raw = bytes(data)
    data[:] = (raw[:a.start()] + raw[b.start():b.end()]
               + raw[a.end():b.start()] + raw[a.start():a.end()]
               + raw[b.end():])


MUTATORS: Sequence[Callable[[bytearray, random.Random], None]] = (
    _flip_bit, _drop_byte, _insert_byte, _repeat_byte,
    _mutate_number, _mutate_number,          # numbers get extra weight
    _swap_lines, _duplicate_line, _drop_line, _swap_tokens,
)


def radamsa_mutate(text: str, seed: int, rounds: Optional[int] = None) -> str:
    """Byte-mutate ``text`` with 1-4 random structure-blind operators."""
    rng = random.Random(seed)
    data = bytearray(text.encode())
    for _ in range(rounds if rounds is not None else rng.randint(1, 4)):
        rng.choice(MUTATORS)(data, rng)
    return bytes(data).decode(errors="replace")


# ---------------------------------------------------------------------------
# Classification for the §II study.
# ---------------------------------------------------------------------------

INVALID = "invalid"
BORING = "boring"
INTERESTING = "interesting"


@dataclass
class ValidityStats:
    invalid: int = 0
    boring: int = 0
    interesting: int = 0

    @property
    def total(self) -> int:
        return self.invalid + self.boring + self.interesting

    def rate(self, kind: str) -> float:
        count = getattr(self, kind)
        return count / self.total if self.total else 0.0

    def __str__(self) -> str:
        return (f"{self.total} mutants: {self.invalid} invalid "
                f"({100 * self.rate('invalid'):.1f}%), {self.boring} boring, "
                f"{self.interesting} interesting")


def classify_mutant(original_text: str, mutated_text: str) -> str:
    """invalid (won't load), boring (loads but is the same program modulo
    names/whitespace), or interesting (a genuinely different program)."""
    try:
        mutated = parse_module(mutated_text)
    except (ParseError, RecursionError):
        return INVALID
    if not is_valid_module(mutated):
        return INVALID
    try:
        original = parse_module(original_text)
    except ParseError:
        return INTERESTING
    if _canonical(mutated) == _canonical(original):
        return BORING
    return INTERESTING


def _canonical(module) -> str:
    """Name-insensitive rendering: strip user names so renames are boring."""
    clone = module.clone()
    for function in clone.definitions():
        for argument in function.arguments:
            argument.name = ""
        for block in function.blocks:
            block.name = ""
            for inst in block.instructions:
                inst.name = ""
    return print_module(clone)


def run_validity_study(corpus: Sequence[Tuple[str, str]],
                       mutants_per_file: int,
                       seed: int = 0) -> ValidityStats:
    """The §II experiment: radamsa-mutate every file, classify mutants."""
    stats = ValidityStats()
    for file_index, (_, text) in enumerate(corpus):
        for i in range(mutants_per_file):
            mutated = radamsa_mutate(text, seed + file_index * 10007 + i)
            kind = classify_mutant(text, mutated)
            setattr(stats, kind, getattr(stats, kind) + 1)
    return stats
