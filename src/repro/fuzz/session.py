"""The ``Session`` facade: one front door to parse → drive → report.

A session holds IR sources (one file, several files, or a generated
corpus) plus the fuzzing configuration, and exposes the two workflows of
the paper behind two methods:

* :meth:`Session.run` — the in-process mutate→optimize→verify loop,
  returning a (merged) :class:`~repro.fuzz.driver.FuzzReport`;
* :meth:`Session.run_campaign` — the Table-I bug campaign over the
  session's sources, optionally sharded across worker processes,
  returning a :class:`~repro.fuzz.campaign.CampaignReport`.

>>> from repro import FuzzConfig, Session
>>> report = Session.from_text(ir_text,
...                            FuzzConfig(pipeline="O2")).run(iterations=100)
>>> campaign = Session.from_corpus(size=24).run_campaign(workers=4)
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..ir.module import Module
from ..ir.parser import parse_module
from .campaign import CampaignConfig, CampaignReport
from .driver import FuzzConfig, FuzzDriver, FuzzReport
from .feedback import FeedbackStats
from .seeds import generate_corpus

__all__ = ["Session"]


class Session:
    """IR sources + configuration, ready to fuzz."""

    def __init__(self, sources: Sequence[Tuple[str, str]],
                 fuzz: Optional[FuzzConfig] = None,
                 campaign: Optional[CampaignConfig] = None) -> None:
        self.sources: List[Tuple[str, str]] = list(sources)
        self.fuzz_config = (fuzz or FuzzConfig()).validate()
        self.campaign_config = campaign

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, fuzz: Optional[FuzzConfig] = None,
                  file_name: str = "input.ll",
                  campaign: Optional[CampaignConfig] = None) -> "Session":
        """A session over one in-memory ``.ll`` source."""
        return cls([(file_name, text)], fuzz=fuzz, campaign=campaign)

    @classmethod
    def from_file(cls, path: str, fuzz: Optional[FuzzConfig] = None,
                  campaign: Optional[CampaignConfig] = None) -> "Session":
        """A session over one ``.ll`` file on disk."""
        with open(path) as stream:
            return cls([(path, stream.read())], fuzz=fuzz, campaign=campaign)

    @classmethod
    def from_corpus(cls, size: int = 48, seed: int = 0,
                    fuzz: Optional[FuzzConfig] = None,
                    campaign: Optional[CampaignConfig] = None) -> "Session":
        """A session over the deterministic generated corpus.

        ``Session.from_corpus(size, seed).run_campaign()`` is equivalent
        to ``run_campaign(CampaignConfig(corpus_size=size,
        corpus_seed=seed))``.
        """
        return cls(generate_corpus(size, seed), fuzz=fuzz, campaign=campaign)

    # -- the two workflows --------------------------------------------------

    def driver(self, index: int = 0) -> FuzzDriver:
        """A fresh :class:`FuzzDriver` for source ``index``."""
        file_name, text = self.sources[index]
        return FuzzDriver(parse_module(text, file_name), self.fuzz_config,
                          file_name=file_name)

    def run(self, iterations: Optional[int] = None,
            time_budget: Optional[float] = None,
            strict: bool = False) -> FuzzReport:
        """Fuzz every source with the session's config; merge the reports.

        The budget applies per source.  For a single-source session this
        is exactly ``FuzzDriver.run``.
        """
        self.fuzz_config.validate(iterations=iterations,
                                  time_budget=time_budget,
                                  require_budget=True)
        merged = FuzzReport()
        for index in range(len(self.sources)):
            driver = self.driver(index)
            try:
                report = driver.run(iterations=iterations,
                                    time_budget=time_budget,
                                    strict=strict)
            finally:
                driver.close()
            merged.iterations += report.iterations
            merged.findings.extend(report.findings)
            merged.dropped_functions.update(report.dropped_functions)
            merged.inconclusive += report.inconclusive
            merged.timings.mutate += report.timings.mutate
            merged.timings.optimize += report.timings.optimize
            merged.timings.verify += report.timings.verify
            merged.metrics.merge(report.metrics)
            if report.feedback is not None:
                if merged.feedback is None:
                    merged.feedback = FeedbackStats()
                merged.feedback.merge(report.feedback)
            for operator, count in report.mutation_counts.items():
                merged.mutation_counts[operator] = \
                    merged.mutation_counts.get(operator, 0) + count
        return merged

    def run_campaign(self, campaign: Optional[CampaignConfig] = None,
                     workers: Optional[int] = None,
                     resume: bool = False) -> CampaignReport:
        """The Table-I campaign over this session's sources.

        ``resume=True`` (requires ``campaign.checkpoint_dir``) merges
        results journaled by a previous — possibly killed — run and
        fuzzes only the remaining jobs.
        """
        from .parallel import CampaignExecutor
        config = campaign or self.campaign_config or CampaignConfig()
        if workers is not None:
            config = replace(config, workers=workers)
        executor = CampaignExecutor(config, corpus=self.sources)
        return executor.execute(resume=resume)

    @staticmethod
    def run_node(queue_dir: str, node: str = "", workers: int = 1,
                 time_budget: Optional[float] = None,
                 max_jobs: Optional[int] = None,
                 wait_for_manifest: Optional[float] = 30.0,
                 work_dir: Optional[str] = None):
        """Join a distributed campaign as a worker node.

        The node needs no sources or config of its own — the job matrix
        (seed text included) comes from the queue directory the
        coordinator published.  Blocks until the queue drains (or the
        budget/count limit hits) and returns the
        :class:`~repro.fuzz.dist.NodeReport`.  The coordinator side is
        ``run_campaign`` with ``campaign.dist`` set.
        """
        from .dist import NodeRunner, WorkQueue
        runner = NodeRunner(WorkQueue(queue_dir, node=node),
                            workers=workers, work_dir=work_dir)
        return runner.run(time_budget=time_budget, max_jobs=max_jobs,
                          wait_for_manifest=wait_for_manifest)

    def replay(self, seed: int, index: int = 0) -> Module:
        """Re-create the mutant a finding's seed denotes (paper §III-E)."""
        return self.driver(index).recreate(seed)
