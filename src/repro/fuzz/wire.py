"""The binary wire tier: frames, blobs, and the decode cache.

Every byte a distributed campaign moves between processes goes through
this module.  Three pieces, deliberately small and independently
testable:

* **Frames** — a length-prefixed binary framing protocol.  A frame is
  ``varint(body length) || body``; the body is ``varint(tag) ||
  varint(header length) || header JSON || varint(blob count) ||
  (varint(blob length) || blob bytes)*``.  Tags mirror the queue verbs
  (publish/claim/heartbeat/release/retire/result/corpus-delta) plus
  the blob-transfer and control verbs.  Varints are unsigned LEB128 —
  the same encoding :mod:`repro.ir.bitcode` uses, so a frame carrying
  a bitcode blob is varints all the way down.  A short read anywhere
  (torn frame, dropped connection) raises :class:`FrameError`; half a
  frame is never delivered as a message.

* **:class:`BlobStore`** — a content-addressed store keyed by the
  sha256 of the bytes.  Memory-backed on nodes (the per-node transfer
  cache: a module's bitcode crosses the wire once per node, thereafter
  jobs reference it by digest) and directory-backed on brokers and in
  queue directories (``blobs/<digest>`` written with the usual
  write-temp + fsync + atomic-rename protocol, so a torn blob is
  impossible and re-publishing an existing digest is free).

* **:class:`DecodeCache`** — a bounded, fingerprint-keyed LRU from
  payload digest to decoded module *text*.  Repeated jobs over the
  same seed hit the cache and skip both the bitcode decode and the
  print; the per-process cache in the claim path is why a node running
  N jobs over one seed decodes it once.

Payload helpers :func:`encode_payload` / :func:`decode_payload` convert
module text to/from its transfer representation (``"bitcode"`` — the
compact binary format — or ``"text"`` for the ablation/debug path).
Text that does not parse is shipped verbatim as ``"text"`` so a
seed with a deliberate parse error still reaches the node and fails
there, exactly as it does on a single host.

All counters land in an optional :class:`~repro.obs.MetricsRegistry`
under ``wire.*`` (frames/bytes/blob cache) and ``bitcode.*``
(encode/decode and the decode cache) — operational telemetry, excluded
from the ``deterministic()`` metric subset like the rest of the
transport bookkeeping.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import socket
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.bitcode import BitcodeError, read_bitcode, write_bitcode
from ..ir.parser import ParseError, parse_module
from ..ir.printer import print_module
from ..obs import MetricsRegistry

__all__ = [
    "BlobStore", "DecodeCache", "FrameError", "FrameStream", "WireError",
    "blob_digest", "decode_frame", "decode_payload", "encode_frame",
    "encode_payload", "read_frame", "TAG_NAMES",
]

#: Payload formats a module may travel as.
FORMAT_BITCODE = "bitcode"
FORMAT_TEXT = "text"
PAYLOAD_FORMATS = (FORMAT_BITCODE, FORMAT_TEXT)

# -- message tags (mirror the queue verbs) ----------------------------------

TAG_HELLO = 1            # {node} -> OK
TAG_OK = 2               # generic success reply (verb-specific header)
TAG_ERROR = 3            # {error, kind} reply
TAG_PUBLISH = 4          # {fingerprint, manifest..., jobs: [...]} -> OK
TAG_MANIFEST = 5         # {} -> OK {manifest}
TAG_CLAIM = 6            # {limit} -> OK {claims: [{job, lease}]}
TAG_HEARTBEAT = 7        # {job_index, lease_duration} -> OK {renewed}
TAG_RELEASE = 8          # {job_index, lease, failure_kind, error} -> OK
TAG_RETIRE = 9           # {job_index, lease} -> OK {retired}
TAG_RESULT = 10          # {fingerprint, attempt, result} -> OK {published}
TAG_CORPUS = 11          # {job_index} + blob -> OK (corpus-delta publish)
TAG_COLLECT_RESULTS = 12  # {fingerprint} -> OK {results: [...]}
TAG_COLLECT_STONES = 13  # {} -> OK {tombstones: [[index, stone]]}
TAG_COLLECT_CORPUS = 14  # {} -> OK {deltas: [[index, digest]]}
TAG_SWEEP = 15           # {} -> OK {retired}
TAG_DRAINED = 16         # {} -> OK {drained}
TAG_BLOB_HAVE = 17       # {digests} -> OK {missing}
TAG_BLOB_PUT = 18        # {digests} + blobs -> OK {stored}
TAG_BLOB_GET = 19        # {digests} -> OK {found} + blobs

TAG_NAMES = {
    TAG_HELLO: "hello", TAG_OK: "ok", TAG_ERROR: "error",
    TAG_PUBLISH: "publish", TAG_MANIFEST: "manifest", TAG_CLAIM: "claim",
    TAG_HEARTBEAT: "heartbeat", TAG_RELEASE: "release",
    TAG_RETIRE: "retire", TAG_RESULT: "result", TAG_CORPUS: "corpus",
    TAG_COLLECT_RESULTS: "collect-results",
    TAG_COLLECT_STONES: "collect-tombstones",
    TAG_COLLECT_CORPUS: "collect-corpus", TAG_SWEEP: "sweep",
    TAG_DRAINED: "drained", TAG_BLOB_HAVE: "blob-have",
    TAG_BLOB_PUT: "blob-put", TAG_BLOB_GET: "blob-get",
}

#: Hard ceiling on one frame's body, a protocol-error backstop against
#: reading a garbage length prefix as a multi-gigabyte allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class WireError(RuntimeError):
    """A wire-tier failure (framing, blob store, payload codec)."""


class FrameError(WireError):
    """A frame could not be read whole: torn, oversized, or malformed.

    Raised on EOF mid-frame (dropped connection, torn write), a length
    prefix past :data:`MAX_FRAME_BYTES`, or an undecodable header.  The
    connection that produced it cannot be resynchronized and must be
    dropped.
    """


# -- varints (unsigned LEB128, as in repro.ir.bitcode) ----------------------


def _append_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise WireError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint_stream(read) -> int:
    """Decode one varint from a ``read(n) -> bytes`` callable."""
    result = 0
    shift = 0
    while True:
        chunk = read(1)
        if not chunk:
            raise FrameError("connection closed mid-varint")
        byte = chunk[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise FrameError("varint too long (corrupt frame)")


# -- frame encode/decode ----------------------------------------------------


def encode_frame(tag: int, header: dict,
                 blobs: Sequence[bytes] = ()) -> bytes:
    """One complete frame (length prefix included) as bytes."""
    body = bytearray()
    _append_varint(body, tag)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    _append_varint(body, len(header_bytes))
    body += header_bytes
    _append_varint(body, len(blobs))
    for blob in blobs:
        _append_varint(body, len(blob))
        body += blob
    out = bytearray()
    _append_varint(out, len(body))
    out += body
    return bytes(out)


def read_frame(read) -> Tuple[int, dict, List[bytes]]:
    """Read one frame from a ``read(n) -> bytes`` callable.

    ``read`` must return at most ``n`` bytes and ``b""`` at EOF (the
    contract of ``socket.recv`` and ``io.BytesIO.read``).  Raises
    :class:`FrameError` if the stream ends mid-frame or the frame is
    malformed — a torn frame never surfaces as a short message.
    """
    length = _read_varint_stream(read)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    body = bytearray()
    while len(body) < length:
        chunk = read(length - len(body))
        if not chunk:
            raise FrameError(f"connection closed mid-frame "
                             f"({len(body)}/{length} bytes)")
        body += chunk
    stream = io.BytesIO(bytes(body))

    def take(n: int) -> bytes:
        return stream.read(n)

    tag = _read_varint_stream(take)
    header_len = _read_varint_stream(take)
    header_bytes = stream.read(header_len)
    if len(header_bytes) != header_len:
        raise FrameError("frame body shorter than its header length")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise FrameError("frame header is not a JSON object")
    blob_count = _read_varint_stream(take)
    blobs: List[bytes] = []
    for _ in range(blob_count):
        blob_len = _read_varint_stream(take)
        blob = stream.read(blob_len)
        if len(blob) != blob_len:
            raise FrameError("frame body shorter than its blob lengths")
        blobs.append(blob)
    return tag, header, blobs


def decode_frame(data: bytes) -> Tuple[int, dict, List[bytes]]:
    """Decode one frame from a complete byte string (test/debug hook)."""
    return read_frame(io.BytesIO(data).read)


class FrameStream:
    """Frames over one connected socket, with byte/frame accounting.

    Not thread-safe; callers (:class:`repro.fuzz.net.SocketQueue`, the
    broker's per-connection handler) serialize access themselves.
    """

    def __init__(self, sock: socket.socket,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sock = sock
        self.metrics = metrics

    def send(self, tag: int, header: dict,
             blobs: Sequence[bytes] = ()) -> None:
        frame = encode_frame(tag, header, blobs)
        self.sock.sendall(frame)
        if self.metrics is not None:
            self.metrics.count("wire.frames.sent")
            self.metrics.count("wire.bytes.sent", len(frame))

    def recv(self) -> Tuple[int, dict, List[bytes]]:
        received = [0]

        def read(n: int) -> bytes:
            chunk = self.sock.recv(n)
            received[0] += len(chunk)
            return chunk

        try:
            tag, header, blobs = read_frame(read)
        except FrameError:
            if self.metrics is not None and received[0]:
                self.metrics.count("wire.frames.torn")
            raise
        if self.metrics is not None:
            self.metrics.count("wire.frames.received")
            self.metrics.count("wire.bytes.received", received[0])
        return tag, header, blobs

    def recv_eof(self) -> Optional[Tuple[int, dict, List[bytes]]]:
        """Like :meth:`recv` but returns None on a clean EOF between
        frames (the peer closed; not an error)."""
        first = self.sock.recv(1)
        if not first:
            return None
        buffered = [first]

        def read(n: int) -> bytes:
            if buffered:
                return buffered.pop()
            return self.sock.recv(n)

        received = [1]

        def counting_read(n: int) -> bytes:
            chunk = read(n)
            received[0] += len(chunk)
            return chunk

        tag, header, blobs = read_frame(counting_read)
        if self.metrics is not None:
            self.metrics.count("wire.frames.received")
            self.metrics.count("wire.bytes.received", received[0])
        return tag, header, blobs

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# -- content-addressed blob store -------------------------------------------


def blob_digest(data: bytes) -> str:
    """The content address of ``data`` (sha256 hex)."""
    return hashlib.sha256(data).hexdigest()


class BlobStore:
    """Content-addressed bytes, memory- or directory-backed.

    ``put`` is idempotent: storing bytes that already exist is a no-op
    (this is what makes re-publishing retry jobs free — the payload is
    referenced by digest and never re-serialized).  Directory-backed
    stores write ``<dir>/<digest>`` via temp + fsync + atomic rename,
    so a SIGKILL mid-store leaves no torn blob, and reads verify the
    digest so disk corruption reads as absence, not as a wrong module.
    """

    def __init__(self, directory: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.directory = directory
        self.metrics = metrics
        self._memory: Dict[str, bytes] = {}

    def _path(self, digest: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, digest)

    def __contains__(self, digest: str) -> bool:
        if digest in self._memory:
            return True
        if self.directory is not None:
            return os.path.exists(self._path(digest))
        return False

    def put(self, data: bytes) -> str:
        digest = blob_digest(data)
        if digest in self:
            return digest
        if self.directory is None:
            self._memory[digest] = data
        else:
            os.makedirs(self.directory, exist_ok=True)
            tmp = self._path(f".{digest}.{os.getpid()}.tmp")
            with open(tmp, "wb") as stream:
                stream.write(data)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, self._path(digest))
        if self.metrics is not None:
            self.metrics.count("wire.blob.stored")
            self.metrics.count("wire.blob.stored_bytes", len(data))
        return digest

    def get(self, digest: str) -> Optional[bytes]:
        data = self._memory.get(digest)
        if data is None and self.directory is not None:
            try:
                with open(self._path(digest), "rb") as stream:
                    data = stream.read()
            except OSError:
                return None
            if blob_digest(data) != digest:
                # Disk corruption: a wrong blob is worse than a missing
                # one (the caller re-fetches or the job re-publishes).
                return None
        return data

    def digests(self) -> List[str]:
        """Every stored digest (directory stores list the directory)."""
        found = set(self._memory)
        if self.directory is not None:
            try:
                names = os.listdir(self.directory)
            except OSError:
                names = []
            found.update(n for n in names if not n.startswith("."))
        return sorted(found)


# -- module payload codec ---------------------------------------------------


def encode_payload(text: str, payload_format: str = FORMAT_BITCODE,
                   metrics: Optional[MetricsRegistry] = None,
                   ) -> Tuple[bytes, str]:
    """Module text -> (transfer bytes, actual format).

    ``"bitcode"`` parses the text and emits the compact binary format;
    text that does not parse falls back to ``"text"`` verbatim, so a
    deliberately broken seed still reaches the node and records its
    parse failure there, exactly as on a single host.
    """
    if payload_format not in PAYLOAD_FORMATS:
        raise WireError(f"unknown payload format {payload_format!r}")
    if payload_format == FORMAT_BITCODE:
        try:
            data = write_bitcode(parse_module(text))
        except (ParseError, BitcodeError):
            payload_format = FORMAT_TEXT
        else:
            if metrics is not None:
                metrics.count("bitcode.encode.count")
                metrics.count("bitcode.encode.text_bytes",
                              len(text.encode("utf-8")))
                metrics.count("bitcode.encode.bitcode_bytes", len(data))
            return data, FORMAT_BITCODE
    return text.encode("utf-8"), FORMAT_TEXT


def decode_payload(data: bytes, payload_format: str,
                   metrics: Optional[MetricsRegistry] = None) -> str:
    """Transfer bytes -> module text (inverse of :func:`encode_payload`).

    Bitcode payloads decode and print; because print-of-parse is a
    fixpoint (pinned by the codec's differential tests), the text a
    node reconstructs here drives the driver to byte-identical findings
    and ``deterministic()`` metrics regardless of the payload format.
    """
    if payload_format == FORMAT_TEXT:
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"undecodable text payload: {exc}") from exc
    if payload_format == FORMAT_BITCODE:
        try:
            text = print_module(read_bitcode(data))
        except BitcodeError as exc:
            raise WireError(f"undecodable bitcode payload: {exc}") from exc
        if metrics is not None:
            metrics.count("bitcode.decode.count")
            metrics.count("bitcode.decode.bitcode_bytes", len(data))
        return text
    raise WireError(f"unknown payload format {payload_format!r}")


class DecodeCache:
    """Bounded LRU from payload digest to decoded module text.

    Fingerprint-keyed: the key is the blob digest, so two jobs over the
    same seed share one decode no matter which transport delivered the
    bytes.  ``capacity`` bounds entries (module texts are small —
    kilobytes — so a few hundred is cheap); eviction is
    least-recently-used.
    """

    def __init__(self, capacity: int = 256,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self._entries: "OrderedDict[str, str]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def text(self, digest: str, data: bytes, payload_format: str) -> str:
        """The decoded text for ``data``; cached by ``digest``."""
        cached = self._entries.get(digest)
        if cached is not None:
            self._entries.move_to_end(digest)
            if self.metrics is not None:
                self.metrics.count("bitcode.decode_cache.hit")
            return cached
        if self.metrics is not None:
            self.metrics.count("bitcode.decode_cache.miss")
        text = decode_payload(data, payload_format, metrics=self.metrics)
        self._entries[digest] = text
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return text
