"""Deterministic schedulers over (mutation source, mutation class) arms.

The feedback-guided loop replaces uniform mutant drawing with an
explicit scheduling decision each iteration: *which* module to mutate
(the seed or an admitted corpus entry) with *which* mutation class.
Every (source, class) pair is one arm; the reward for pulling it is the
number of new coverage features the resulting mutant reached (see
:mod:`repro.fuzz.feedback`).

Determinism is a hard requirement — a campaign's findings and
``deterministic()`` metrics must be bit-identical across kill+resume and
worker counts — so neither scheduler consumes randomness:

* :class:`BanditScheduler` — UCB1.  Unplayed arms are pulled first in
  registration order; afterwards the arm maximizing
  ``mean reward + c·sqrt(ln(total)/plays)`` wins, ties broken by
  registration order.  The pull sequence is a pure function of the
  reward sequence, which is itself deterministic per job.
* :class:`RoundRobinScheduler` — cycles arms in registration order,
  ignoring rewards; the uniform-ish deterministic baseline the E9
  ablation compares against.

New arms appear mid-run when a corpus admission registers a new source;
registration order is admission order, so the arm universe is
deterministic too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ArmStats", "BanditScheduler", "RoundRobinScheduler",
           "create_scheduler"]

ArmKey = Tuple[str, str]  # (source id, mutation class)


@dataclass
class ArmStats:
    """Pulls and cumulative reward for one (source, class) arm."""

    plays: int = 0
    reward: float = 0.0

    @property
    def mean(self) -> float:
        return self.reward / self.plays if self.plays else 0.0


class _SchedulerBase:
    """Arm registry shared by both schedulers."""

    name = "<unnamed>"

    def __init__(self, operators: Sequence[str]) -> None:
        if not operators:
            raise ValueError("scheduler needs at least one mutation class")
        self.operators = list(operators)
        self._arms: Dict[ArmKey, ArmStats] = {}
        self._order: List[ArmKey] = []
        self.total_plays = 0

    def add_source(self, source: str) -> None:
        """Register arms for ``source`` × every mutation class (idempotent)."""
        for operator in self.operators:
            key = (source, operator)
            if key not in self._arms:
                self._arms[key] = ArmStats()
                self._order.append(key)

    def update(self, source: str, operator: str, reward: float) -> None:
        """Record the reward for one pull of (source, operator)."""
        arm = self._arms[(source, operator)]
        arm.plays += 1
        arm.reward += reward
        self.total_plays += 1

    def arms(self) -> List[Tuple[ArmKey, ArmStats]]:
        """Arms in registration order (the tie-break order)."""
        return [(key, self._arms[key]) for key in self._order]

    def arm_count(self) -> int:
        return len(self._order)

    def select(self) -> ArmKey:
        raise NotImplementedError


class BanditScheduler(_SchedulerBase):
    """Deterministic UCB1 over (source, mutation class) arms."""

    name = "bandit"

    def __init__(self, operators: Sequence[str],
                 exploration: float = math.sqrt(2.0)) -> None:
        super().__init__(operators)
        self.exploration = exploration

    def select(self) -> ArmKey:
        if not self._order:
            raise ValueError("no arms registered (call add_source first)")
        for key in self._order:
            if self._arms[key].plays == 0:
                return key
        log_total = math.log(self.total_plays)
        best: Optional[ArmKey] = None
        best_score = -math.inf
        for key in self._order:
            arm = self._arms[key]
            score = arm.mean + self.exploration * math.sqrt(
                log_total / arm.plays)
            if score > best_score:  # strict: first (oldest) arm wins ties
                best, best_score = key, score
        return best


class RoundRobinScheduler(_SchedulerBase):
    """Cycles arms in registration order; the no-learning baseline."""

    name = "round-robin"

    def __init__(self, operators: Sequence[str]) -> None:
        super().__init__(operators)
        self._cursor = 0

    def select(self) -> ArmKey:
        if not self._order:
            raise ValueError("no arms registered (call add_source first)")
        key = self._order[self._cursor % len(self._order)]
        self._cursor += 1
        return key


def create_scheduler(name: str, operators: Sequence[str]) -> _SchedulerBase:
    if name == "bandit":
        return BanditScheduler(operators)
    if name == "round-robin":
        return RoundRobinScheduler(operators)
    raise ValueError(f"unknown scheduler {name!r} "
                     "(available: bandit, round-robin)")
