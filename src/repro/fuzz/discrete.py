"""The discrete-tools baseline workflow (paper Figure 2, §V-B).

Runs the same mutate→optimize→verify work as the in-process driver, but
as three separate processes communicating through files:

  1. ``alive-mutate --mutate-only`` writes a mutant ``.ll`` file;
  2. ``repro-opt`` reads it, optimizes, writes the optimized file;
  3. ``alive-tv`` reads both files and checks refinement.

Every iteration therefore pays process creation/destruction, dynamic
loading, parsing, printing, and file I/O — the overheads the integrated
tool amortizes away.  Seeding matches the in-process driver (mutant ``i``
uses ``base_seed + i``), so both workflows perform identical work.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .findings import CRASH, MISCOMPILATION, Finding


@dataclass
class DiscreteConfig:
    pipeline: str = "O2"
    enabled_bugs: Sequence[str] = ()
    base_seed: int = 0
    max_mutations: int = 3
    max_inputs: int = 24
    work_dir: Optional[str] = None   # default: a fresh temp dir


@dataclass
class DiscreteReport:
    iterations: int = 0
    findings: List[Finding] = field(default_factory=list)
    elapsed: float = 0.0


def _tool(module: str, args: List[str]) -> List[str]:
    """Command line for one of our tools, independent of PATH."""
    return [sys.executable, "-m", module] + args


def run_discrete_workflow(input_path: str, iterations: int,
                          config: Optional[DiscreteConfig] = None
                          ) -> DiscreteReport:
    """Run ``iterations`` mutate/opt/tv cycles through subprocesses."""
    config = config or DiscreteConfig()
    report = DiscreteReport()
    started = time.perf_counter()
    with tempfile.TemporaryDirectory() as default_dir:
        work_dir = config.work_dir or default_dir
        os.makedirs(work_dir, exist_ok=True)
        mutant_path = os.path.join(work_dir, "mutant.ll")
        optimized_path = os.path.join(work_dir, "optimized.ll")
        bug_flags: List[str] = []
        for bug_id in config.enabled_bugs:
            bug_flags.extend(["--enable-bug", bug_id])

        for i in range(iterations):
            seed = config.base_seed + i
            # Stage 1: standalone mutation.
            mutate = subprocess.run(
                _tool("repro.cli.alive_mutate",
                      ["--mutate-only", "--seed", str(seed),
                       "--max-mutations", str(config.max_mutations),
                       "-o", mutant_path, input_path]),
                capture_output=True)
            if mutate.returncode != 0:
                report.findings.append(Finding(
                    kind=CRASH, seed=seed, file=input_path,
                    detail="mutator failed: "
                           + mutate.stderr.decode(errors="replace")))
                continue
            # Stage 2: standalone optimization.
            optimize = subprocess.run(
                _tool("repro.cli.opt_tool",
                      ["-p", config.pipeline, "-o", optimized_path,
                       mutant_path] + bug_flags),
                capture_output=True)
            if optimize.returncode != 0:
                report.findings.append(Finding(
                    kind=CRASH, seed=seed, file=input_path,
                    detail=optimize.stderr.decode(errors="replace").strip()))
                continue
            # Stage 3: standalone translation validation.
            validate = subprocess.run(
                _tool("repro.cli.alive_tv",
                      ["--max-inputs", str(config.max_inputs),
                       mutant_path, optimized_path]),
                capture_output=True)
            if validate.returncode == 1:
                report.findings.append(Finding(
                    kind=MISCOMPILATION, seed=seed, file=input_path,
                    detail=validate.stdout.decode(errors="replace").strip()))
            report.iterations += 1
    report.elapsed = time.perf_counter() - started
    return report
