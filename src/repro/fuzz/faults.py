"""Deterministic fault injection for the campaign runtime.

Long-running fuzzing infrastructure has to be tested against the
failures it claims to survive: raising jobs, hung workers, workers that
die outright, and supervisors killed mid-journal-append.  This module
provides a :class:`FaultyRunner` — a picklable
:data:`~repro.fuzz.parallel.JobRunner` wrapper that injects those
faults *by job index*, so every fault-tolerance path can be exercised
deterministically — plus :func:`damage_journal`, which simulates the
one on-disk failure mode of the checkpoint journal (a crash mid-append
leaving a truncated trailing record).

>>> runner = FaultyRunner({3: FaultSpec("exit")}, state_dir=tmp)
>>> CampaignExecutor(config, job_runner=runner).execute()

Faults can be limited to the first ``times`` attempts
(``FaultSpec("exit", times=1)`` dies once, then succeeds on retry),
which requires ``state_dir`` — attempts are counted in files because
retries of a killed job run in a *fresh worker process*, where
in-memory counters would reset.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

from .parallel import ShardJob, ShardResult, execute_job

__all__ = ["FaultInjected", "FaultSpec", "FaultyRunner", "damage_journal"]


class FaultInjected(RuntimeError):
    """The exception a ``raise`` fault throws inside the worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``action`` is one of:

    * ``"raise"`` — raise :class:`FaultInjected` (contained in-worker,
      becomes a failed shard);
    * ``"hang"`` — sleep ``seconds`` (default effectively forever),
      simulating a pathological mutant that never terminates; only the
      watchdog can end it;
    * ``"exit"`` — ``os._exit(code)``, killing the worker process with
      no Python cleanup (the poison-job case).

    ``times`` limits the fault to the first N attempts of the job
    (None = every attempt), letting tests distinguish transient faults
    (retry succeeds) from persistent ones (quarantine).
    """

    action: str
    times: Optional[int] = None
    seconds: float = 3600.0
    code: int = 23


class FaultyRunner:
    """A job runner that injects faults for chosen job indexes.

    Picklable (plain data attributes + module-level base runner), so it
    crosses the process boundary into pool and supervised workers
    exactly like the real runner.
    """

    def __init__(self, faults: Dict[int, FaultSpec],
                 state_dir: Optional[str] = None) -> None:
        self.faults = dict(faults)
        self.state_dir = state_dir
        if any(spec.times is not None for spec in self.faults.values()) \
                and state_dir is None:
            raise ValueError("FaultSpec.times needs state_dir to count "
                             "attempts across worker processes")

    def __call__(self, job: ShardJob) -> ShardResult:
        spec = self.faults.get(job.job_index)
        if spec is not None and self._armed(job.job_index, spec):
            self._fire(spec)
        return execute_job(job)

    # -- internals ----------------------------------------------------------

    def _armed(self, job_index: int, spec: FaultSpec) -> bool:
        if spec.times is None:
            return True
        attempt = self._bump_attempt(job_index)
        return attempt <= spec.times

    def _bump_attempt(self, job_index: int) -> int:
        assert self.state_dir is not None
        os.makedirs(self.state_dir, exist_ok=True)
        path = os.path.join(self.state_dir, f"job-{job_index}.attempts")
        try:
            with open(path) as stream:
                attempt = int(stream.read().strip() or 0) + 1
        except (OSError, ValueError):
            attempt = 1
        with open(path, "w") as stream:
            stream.write(str(attempt))
        return attempt

    def _fire(self, spec: FaultSpec) -> None:
        if spec.action == "raise":
            raise FaultInjected("injected fault: raise")
        if spec.action == "hang":
            time.sleep(spec.seconds)
            return
        if spec.action == "exit":
            os._exit(spec.code)
        raise ValueError(f"unknown fault action {spec.action!r}")


def damage_journal(path: str, keep_bytes: int = 20) -> None:
    """Simulate a supervisor crash mid-append on a checkpoint journal.

    Truncates the journal's final record to its first ``keep_bytes``
    bytes with no trailing newline — exactly what a kill between
    ``write`` and the completing newline+fsync leaves behind.  Resume
    must detect the damaged tail, drop it, and re-run that job.
    """
    with open(path, "rb") as stream:
        raw = stream.read()
    body = raw.rstrip(b"\n")
    cut = body.rfind(b"\n")
    if cut < 0:
        raise ValueError(f"{path}: journal has no complete record to damage")
    last = body[cut + 1:]
    with open(path, "wb") as stream:
        stream.write(body[:cut + 1] + last[:keep_bytes])
        stream.flush()
        os.fsync(stream.fileno())
