"""Deterministic fault injection for the campaign runtime.

Long-running fuzzing infrastructure has to be tested against the
failures it claims to survive: raising jobs, hung workers, workers that
die outright, and supervisors killed mid-journal-append.  This module
provides a :class:`FaultyRunner` — a picklable
:data:`~repro.fuzz.parallel.JobRunner` wrapper that injects those
faults *by job index*, so every fault-tolerance path can be exercised
deterministically — plus the on-disk half of the harness:

* :func:`damage_journal` simulates a crash mid-append on any fsync'd
  JSONL journal (checkpoint, corpus, findings) *or* a torn write on a
  single-record queue file, leaving a truncated trailing record;
* :func:`torn_write` simulates the rawest failure — a partial
  ``os.write`` cut short by SIGKILL — by writing only a prefix of the
  payload straight to the target path, bypassing the atomic-rename
  protocol the real writers use;
* :class:`ChaosQueue` wraps :class:`repro.fuzz.dist.WorkQueue` with
  injected lease expiry, torn queue files, duplicate delivery, and
  per-instance clock skew, for distributed-protocol chaos tests.

>>> runner = FaultyRunner({3: FaultSpec("exit")}, state_dir=tmp)
>>> CampaignExecutor(config, job_runner=runner).execute()

Faults can be limited to the first ``times`` attempts
(``FaultSpec("exit", times=1)`` dies once, then succeeds on retry),
which requires ``state_dir`` — attempts are counted in files because
retries of a killed job run in a *fresh worker process*, where
in-memory counters would reset.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .dist import WorkQueue
from .net import SocketQueue
from .parallel import ShardJob, ShardResult, execute_job
from .wire import TAG_RESULT, encode_frame

__all__ = ["ChaosQueue", "ChaosSocketQueue", "FaultInjected", "FaultSpec",
           "FaultyRunner", "damage_journal", "torn_write"]


class FaultInjected(RuntimeError):
    """The exception a ``raise`` fault throws inside the worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``action`` is one of:

    * ``"raise"`` — raise :class:`FaultInjected` (contained in-worker,
      becomes a failed shard);
    * ``"hang"`` — sleep ``seconds`` (default effectively forever),
      simulating a pathological mutant that never terminates; only the
      watchdog can end it;
    * ``"exit"`` — ``os._exit(code)``, killing the worker process with
      no Python cleanup (the poison-job case).

    ``times`` limits the fault to the first N attempts of the job
    (None = every attempt), letting tests distinguish transient faults
    (retry succeeds) from persistent ones (quarantine).
    """

    action: str
    times: Optional[int] = None
    seconds: float = 3600.0
    code: int = 23


class FaultyRunner:
    """A job runner that injects faults for chosen job indexes.

    Picklable (plain data attributes + module-level base runner), so it
    crosses the process boundary into pool and supervised workers
    exactly like the real runner.
    """

    def __init__(self, faults: Dict[int, FaultSpec],
                 state_dir: Optional[str] = None) -> None:
        self.faults = dict(faults)
        self.state_dir = state_dir
        if any(spec.times is not None for spec in self.faults.values()) \
                and state_dir is None:
            raise ValueError("FaultSpec.times needs state_dir to count "
                             "attempts across worker processes")

    def __call__(self, job: ShardJob) -> ShardResult:
        spec = self.faults.get(job.job_index)
        if spec is not None and self._armed(job.job_index, spec):
            self._fire(spec)
        return execute_job(job)

    # -- internals ----------------------------------------------------------

    def _armed(self, job_index: int, spec: FaultSpec) -> bool:
        if spec.times is None:
            return True
        attempt = self._bump_attempt(job_index)
        return attempt <= spec.times

    def _bump_attempt(self, job_index: int) -> int:
        assert self.state_dir is not None
        os.makedirs(self.state_dir, exist_ok=True)
        path = os.path.join(self.state_dir, f"job-{job_index}.attempts")
        try:
            with open(path) as stream:
                attempt = int(stream.read().strip() or 0) + 1
        except (OSError, ValueError):
            attempt = 1
        with open(path, "w") as stream:
            stream.write(str(attempt))
        return attempt

    def _fire(self, spec: FaultSpec) -> None:
        if spec.action == "raise":
            raise FaultInjected("injected fault: raise")
        if spec.action == "hang":
            time.sleep(spec.seconds)
            return
        if spec.action == "exit":
            os._exit(spec.code)
        raise ValueError(f"unknown fault action {spec.action!r}")


def damage_journal(path: str, keep_bytes: int = 20,
                   allow_single: bool = False) -> None:
    """Simulate a crash mid-append on any fsync'd JSONL file.

    Truncates the file's final record to its first ``keep_bytes``
    bytes with no trailing newline — exactly what a kill between
    ``write`` and the completing newline+fsync leaves behind.  Works on
    every journal in the system (checkpoint, corpus, findings): resume
    must detect the damaged tail, drop it, and redo only that record.

    With ``allow_single`` the file may hold a *single* record — the
    queue-file case (manifest, lease, result, tombstone are one JSON
    line each), where the damage leaves no complete record at all and
    readers must treat the file as absent.  Without it a single-record
    file raises, preserving the original journal-only contract.
    """
    with open(path, "rb") as stream:
        raw = stream.read()
    body = raw.rstrip(b"\n")
    cut = body.rfind(b"\n")
    if cut < 0 and not allow_single:
        raise ValueError(f"{path}: journal has no complete record to damage")
    last = body[cut + 1:]
    with open(path, "wb") as stream:
        stream.write(body[:cut + 1] + last[:keep_bytes])
        stream.flush()
        os.fsync(stream.fileno())


def torn_write(path: str, payload: bytes, fraction: float = 0.5) -> None:
    """Simulate a partial ``os.write`` cut short by SIGKILL.

    Writes only the leading ``fraction`` of ``payload`` directly to
    ``path`` — deliberately *not* using the write-temp-then-rename
    protocol — modelling a writer that skipped the protocol (or a
    filesystem that tore the write) and died mid-syscall.  Readers of
    protocol files must treat the result as absent/damaged, never parse
    half a record as state.
    """
    cut = max(1, int(len(payload) * fraction)) if payload else 0
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload[:cut])
    finally:
        os.close(fd)


class ChaosQueue(WorkQueue):
    """A :class:`~repro.fuzz.dist.WorkQueue` with protocol-level chaos.

    Each injection models one distributed failure the protocol claims
    to survive, applied deterministically so tests can assert exact
    outcomes:

    * ``clock_skew`` — this instance's clock runs offset by that many
      seconds (heartbeat renewal and lease-expiry checks both see the
      skewed time, like a node with a drifting clock);
    * :meth:`force_expire` — rewrite a job's live lease as already
      expired, simulating the owner vanishing without the wait;
    * ``torn_results`` — the next publishes of these job indexes tear
      mid-write instead of landing atomically (the torn file must read
      as absent and be repaired by the retry's publish);
    * ``duplicate_delivery`` — the first N :meth:`settled` checks per
      job pretend the job is still open, letting a second node claim
      and re-run work that already has a result (the classic
      at-least-once duplicate; the merge must dedup it).
    """

    def __init__(self, directory: str, node: str = "",
                 clock: Callable[[], float] = time.time,
                 clock_skew: float = 0.0,
                 torn_results: Optional[Dict[int, int]] = None,
                 duplicate_delivery: Optional[Dict[int, int]] = None) -> None:
        super().__init__(directory, node=node, clock=clock)
        self.clock_skew = clock_skew
        self.torn_results = dict(torn_results or {})
        self.duplicate_delivery = dict(duplicate_delivery or {})
        base_clock = self.clock
        self.clock = lambda: base_clock() + self.clock_skew

    def force_expire(self, job_index: int) -> bool:
        """Rewrite a job's lease as expired-now; False if no lease."""
        lease = self.read_lease(job_index)
        if lease is None:
            return False
        from dataclasses import replace
        expired = replace(lease, expires_at=self.clock() - 1.0)
        self._write_atomic(self.lease_path(job_index), expired.to_dict())
        self.metrics.count("chaos.lease.forced_expiry")
        return True

    def settled(self, job_index: int) -> bool:
        pending = self.duplicate_delivery.get(job_index, 0)
        if pending > 0 and super().settled(job_index):
            self.duplicate_delivery[job_index] = pending - 1
            self.metrics.count("chaos.duplicate_delivery")
            return False
        return super().settled(job_index)

    def publish_result(self, result, fingerprint: str,
                       attempt: int = 1) -> bool:
        pending = self.torn_results.get(result.job_index, 0)
        if pending > 0:
            self.torn_results[result.job_index] = pending - 1
            import json
            from .checkpoint import result_to_dict
            payload = json.dumps({
                "kind": "result",
                "fingerprint": fingerprint,
                "node": self.node,
                "attempt": attempt,
                "result": result_to_dict(result),
            }, sort_keys=True).encode("utf-8")
            path = self.result_path(result.job_index)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            torn_write(path, payload)
            self.metrics.count("chaos.results.torn")
            return False
        return super().publish_result(result, fingerprint, attempt=attempt)


class ChaosSocketQueue(SocketQueue):
    """A :class:`~repro.fuzz.net.SocketQueue` with wire-level chaos.

    Each injection models one network failure the socket transport
    claims to survive, applied deterministically by request count:

    * ``drop_every`` — every Nth request finds its connection already
      dead (dropped client-side just before sending), exercising the
      reconnect-and-retry path mid-protocol;
    * ``torn_every`` — every Nth request first sends *half* a frame on
      a throwaway connection and abandons it, leaving the broker to
      detect the torn frame and kill that connection (the client then
      completes the request normally on a fresh one);
    * ``duplicate_results`` — the first N result publishes are sent
      twice, the classic at-least-once duplicate; the broker's
      first-writer-wins dedup must report the echo as unpublished.

    All of these must leave findings and ``deterministic()`` metrics
    identical to a chaos-free run — that invariance is what the chaos
    campaign tests assert.
    """

    def __init__(self, address: str, node: str = "",
                 drop_every: int = 0, torn_every: int = 0,
                 duplicate_results: int = 0, **kwargs) -> None:
        super().__init__(address, node=node, **kwargs)
        self.drop_every = drop_every
        self.torn_every = torn_every
        self.duplicate_results = duplicate_results
        self._request_count = 0

    def _request(self, tag, header, blobs=()):
        with self._lock:
            self._request_count += 1
            count = self._request_count
            if self.drop_every and count % self.drop_every == 0:
                self._drop()
                self.metrics.count("chaos.net.dropped_connections")
            if self.torn_every and count % self.torn_every == 0:
                self._send_torn_frame(tag, header, blobs)
            reply = super()._request(tag, header, blobs)
            if tag == TAG_RESULT and self.duplicate_results > 0:
                self.duplicate_results -= 1
                # Re-send the identical result; the broker's
                # first-writer-wins dedup must drop the echo.
                super()._request(tag, header, blobs)
                self.metrics.count("chaos.net.duplicate_results")
            return reply

    def _send_torn_frame(self, tag, header, blobs) -> None:
        """Half a frame on a sacrificial connection, then silence."""
        try:
            stream = self._connect()
            frame = encode_frame(tag, header, blobs)
            stream.sock.sendall(frame[:max(1, len(frame) // 2)])
        except OSError:
            pass
        finally:
            self._drop()
        self.metrics.count("chaos.net.torn_frames")
