"""Fuzzing harnesses: in-process driver, discrete baseline, corpus,
radamsa study, bug campaign (sequential, sharded, or distributed across
nodes via the lease-based work queue — with checkpoint/resume, watchdog
deadlines, and quarantine), the fault-injection/chaos test harness, the
throughput experiment, and the ``Session`` facade tying them
together."""

from .campaign import (JOB_SEED_STRIDE, BugOutcome, CampaignConfig,
                       CampaignReport, QuarantinedJob, ShardFailure,
                       run_campaign)
from .checkpoint import (CheckpointError, CheckpointJournal,
                         CheckpointMismatch, jobs_fingerprint)
from .corpus import (Corpus, CorpusEntry, CorpusJournal, merge_journals,
                     module_fingerprint)
from .discrete import DiscreteConfig, DiscreteReport, run_discrete_workflow
from .dist import (DistConfig, NodeReport, NodeRunner, QueueError,
                   QueueMismatch, Transport, WorkQueue, open_queue)
from .driver import (ConfigError, DeadlineExceeded, FuzzConfig, FuzzDriver,
                     FuzzReport, StageTimings)
from .feedback import Feedback, FeedbackConfig, FeedbackMap, FeedbackStats
from .faults import (ChaosQueue, ChaosSocketQueue, FaultInjected,
                     FaultSpec, FaultyRunner, damage_journal, torn_write)
from .findings import CRASH, MISCOMPILATION, BugLog, Finding
from .net import QueueBroker, SocketQueue
from .wire import BlobStore, DecodeCache
from .parallel import (CampaignExecutor, ShardJob, ShardResult, execute_job,
                       run_jobs)
from .radamsa import (BORING, INTERESTING, INVALID, ValidityStats,
                      classify_mutant, radamsa_mutate, run_validity_study)
from .reduce import ReductionResult, reduce_module
from .schedule import BanditScheduler
from .seeds import (ARCHETYPES, corpus_modules, generate_corpus,
                    generate_large_corpus)
from .session import Session
from .throughput import (FileTiming, ThroughputConfig, ThroughputReport,
                         run_throughput_experiment)

__all__ = [
    "JOB_SEED_STRIDE", "BugOutcome", "CampaignConfig", "CampaignReport",
    "QuarantinedJob", "ShardFailure", "run_campaign",
    "CheckpointError", "CheckpointJournal", "CheckpointMismatch",
    "jobs_fingerprint",
    "Corpus", "CorpusEntry", "CorpusJournal", "merge_journals",
    "module_fingerprint",
    "DiscreteConfig", "DiscreteReport", "run_discrete_workflow",
    "DistConfig", "NodeReport", "NodeRunner", "QueueError", "QueueMismatch",
    "Transport", "WorkQueue", "open_queue",
    "QueueBroker", "SocketQueue", "BlobStore", "DecodeCache",
    "ConfigError", "DeadlineExceeded", "FuzzConfig", "FuzzDriver",
    "FuzzReport", "StageTimings",
    "Feedback", "FeedbackConfig", "FeedbackMap", "FeedbackStats",
    "ChaosQueue", "ChaosSocketQueue", "FaultInjected", "FaultSpec",
    "FaultyRunner", "damage_journal", "torn_write",
    "CRASH", "MISCOMPILATION", "BugLog", "Finding",
    "CampaignExecutor", "ShardJob", "ShardResult", "execute_job", "run_jobs",
    "BORING", "INTERESTING", "INVALID", "ValidityStats", "classify_mutant",
    "radamsa_mutate", "run_validity_study",
    "ReductionResult", "reduce_module",
    "BanditScheduler",
    "ARCHETYPES", "corpus_modules", "generate_corpus",
    "generate_large_corpus",
    "Session",
    "FileTiming", "ThroughputConfig", "ThroughputReport",
    "run_throughput_experiment",
]
