"""Fuzzing harnesses: in-process driver, discrete baseline, corpus,
radamsa study, bug campaign, and the throughput experiment."""

from .campaign import (BugOutcome, CampaignConfig, CampaignReport,
                       run_campaign)
from .corpus import (ARCHETYPES, corpus_modules, generate_corpus,
                     generate_large_corpus)
from .discrete import DiscreteConfig, DiscreteReport, run_discrete_workflow
from .driver import FuzzConfig, FuzzDriver, FuzzReport, StageTimings
from .findings import CRASH, MISCOMPILATION, BugLog, Finding
from .radamsa import (BORING, INTERESTING, INVALID, ValidityStats,
                      classify_mutant, radamsa_mutate, run_validity_study)
from .reduce import ReductionResult, reduce_module
from .throughput import (FileTiming, ThroughputConfig, ThroughputReport,
                         run_throughput_experiment)

__all__ = [
    "BugOutcome", "CampaignConfig", "CampaignReport", "run_campaign",
    "ARCHETYPES", "corpus_modules", "generate_corpus",
    "generate_large_corpus",
    "DiscreteConfig", "DiscreteReport", "run_discrete_workflow",
    "FuzzConfig", "FuzzDriver", "FuzzReport", "StageTimings",
    "CRASH", "MISCOMPILATION", "BugLog", "Finding",
    "BORING", "INTERESTING", "INVALID", "ValidityStats", "classify_mutant",
    "radamsa_mutate", "run_validity_study",
    "ReductionResult", "reduce_module",
    "FileTiming", "ThroughputConfig", "ThroughputReport",
    "run_throughput_experiment",
]
