"""The socket transport: a TCP queue broker and its client.

For fleets whose hosts cannot share a directory, the queue state moves
into a :class:`QueueBroker` — a small TCP server owning the
lease/result protocol **in memory**, journal-backed for crash recovery
— and nodes/coordinators talk to it through :class:`SocketQueue`, a
drop-in :class:`~repro.fuzz.dist.Transport`.  Everything above the
transport surface (claims, heartbeats, backoff, result dedup, corpus
merging, the campaign fingerprint) is byte-identical to the shared-dir
queue; only the bytes' route changes.

Protocol
--------
One frame per verb (see :mod:`repro.fuzz.wire` for the frame layout);
the client opens a connection, introduces itself (``hello {node}``),
then issues request/response pairs.  Module payloads are
content-addressed: ``publish`` ships each unique module's bitcode
exactly once (``blob-have`` → ``blob-put`` of the missing digests) and
job records carry only the sha256; a claiming node fetches blobs it has
never seen (``blob-get``), caches them, and decodes each digest once
through the bounded decode LRU.

Durability
----------
Every accepted mutation (manifest, job record, result, tombstone,
corpus delta) is appended to ``broker.jsonl`` — one fsync'd JSON line,
written *before* the reply — and blobs live in a content-addressed
directory next to it, so a broker killed with SIGKILL at any instant
restarts from the journal having lost at most the mutations it never
acknowledged; the clients that sent those never saw a reply and retry.
The journal reader tolerates the single crash failure mode (a torn
trailing line) exactly like every other journal in the system.

Leases are deliberately **not** journaled: they are soft state.  A
restarted broker comes up with no leases, which reads as "every node
vanished" — in-flight jobs are simply reclaimable again, and duplicate
completions dedup as always.  A *disconnect* expires the dropped node's
leases immediately (no other connection from that node remaining), so
lease recovery after a node kill -9 is bounded by TCP teardown, not by
the lease clock — feeding the existing reclaim/quarantine machinery.

Failure matrix delta vs the shared-dir queue: see DESIGN §13.
"""

from __future__ import annotations

import os
import socket
import tempfile
import threading
import time
from dataclasses import asdict, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..obs import MetricsRegistry
from .checkpoint import result_from_dict, result_to_dict
from .dist import (Lease, QueueError, QueueMismatch, REASON_NODE_LOST,
                   REASON_QUARANTINE, ShardJob, ShardResult, _jsonified,
                   job_from_wire, job_to_wire)
from .parallel import retry_delay
from .wire import (FORMAT_BITCODE, BlobStore, DecodeCache, FrameError,
                   FrameStream, TAG_BLOB_GET, TAG_BLOB_HAVE, TAG_BLOB_PUT,
                   TAG_CLAIM, TAG_COLLECT_CORPUS, TAG_COLLECT_RESULTS,
                   TAG_COLLECT_STONES, TAG_CORPUS, TAG_DRAINED, TAG_ERROR,
                   TAG_HEARTBEAT, TAG_HELLO, TAG_MANIFEST, TAG_OK,
                   TAG_PUBLISH, TAG_RELEASE, TAG_RESULT, TAG_RETIRE,
                   TAG_SWEEP, blob_digest, encode_payload)

__all__ = ["QueueBroker", "SocketQueue", "parse_address"]

BROKER_JOURNAL_NAME = "broker.jsonl"
BROKER_VERSION = 1


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> (host, port); raises :class:`QueueError`."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise QueueError(f"queue address must be HOST:PORT, got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise QueueError(f"invalid port in queue address {address!r}")


# ---------------------------------------------------------------------------
# The broker.
# ---------------------------------------------------------------------------


class QueueBroker:
    """In-memory queue state behind a TCP socket, journaled for crashes.

    ``journal_dir`` (optional but recommended) makes the broker
    crash-safe: every accepted mutation is an fsync'd JSONL append
    *before* the reply, blobs are content-addressed files, and a
    restarted broker replays the journal.  Without it the broker is a
    fast in-memory queue that loses state with the process (fine for
    tests and single-run campaigns where the coordinator republishes).

    ``clock`` is injectable for chaos tests, exactly as on
    :class:`~repro.fuzz.dist.WorkQueue`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 journal_dir: Optional[str] = None,
                 clock: Callable[[], float] = time.time) -> None:
        self.host = host
        self.port = port
        self.journal_dir = journal_dir
        self.clock = clock
        self.metrics = MetricsRegistry()
        blob_dir = os.path.join(journal_dir, "blobs") if journal_dir \
            else None
        self.blobs = BlobStore(blob_dir, metrics=self.metrics)
        self._lock = threading.Lock()
        self._manifest: Optional[dict] = None
        self._jobs: Dict[int, dict] = {}
        self._leases: Dict[int, Lease] = {}
        self._results: Dict[int, dict] = {}
        self._tombstones: Dict[int, dict] = {}
        self._corpus: Dict[int, str] = {}
        self._journal = None
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._live_conns: Set[socket.socket] = set()
        self._conns_by_node: Dict[str, int] = {}
        if journal_dir:
            os.makedirs(journal_dir, exist_ok=True)
            self._recover()

    # -- journal ------------------------------------------------------------

    def journal_path(self) -> str:
        assert self.journal_dir is not None
        return os.path.join(self.journal_dir, BROKER_JOURNAL_NAME)

    def _journal_append(self, record: dict) -> None:
        """Write-ahead: fsync the record before the state mutation's
        reply ever leaves the broker."""
        if self.journal_dir is None:
            return
        import json
        if self._journal is None:
            self._journal = open(self.journal_path(), "a")
        self._journal.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def _recover(self) -> None:
        """Replay the journal; tolerate (only) a torn trailing line."""
        import json
        path = self.journal_path()
        try:
            with open(path, "rb") as stream:
                raw = stream.read()
        except OSError:
            return
        pieces = raw.splitlines(keepends=True)
        for position, piece in enumerate(pieces):
            last = position == len(pieces) - 1
            stripped = piece.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if last:
                    self.metrics.count("net.journal.torn_tail")
                    break  # crash mid-append: drop the damaged tail
                raise QueueError(f"{path}: damaged journal line "
                                 f"{position + 1}")
            if not piece.endswith(b"\n") and last:
                self.metrics.count("net.journal.torn_tail")
                break  # complete-looking JSON, newline never landed
            if not isinstance(record, dict):
                continue
            self._replay(record)
        self.metrics.count("net.journal.recovered",
                           len(self._results) + len(self._tombstones))

    def _replay(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "manifest":
            self._manifest = record.get("manifest")
        elif kind == "job":
            try:
                index = int(record["job"]["job_index"])
            except (KeyError, TypeError, ValueError):
                return
            self._jobs[index] = record["job"]
        elif kind == "result":
            try:
                index = int(record["job_index"])
            except (KeyError, TypeError, ValueError):
                return
            self._results.setdefault(index, record.get("payload", {}))
        elif kind == "tombstone":
            try:
                index = int(record["job_index"])
            except (KeyError, TypeError, ValueError):
                return
            self._tombstones.setdefault(index, record.get("stone", {}))
        elif kind == "corpus":
            try:
                index = int(record["job_index"])
            except (KeyError, TypeError, ValueError):
                return
            sha = record.get("sha", "")
            if sha:
                self._corpus[index] = sha

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and serve on a background thread.

        Returns the bound ``(host, port)`` — with ``port=0`` the OS
        picks a free one, which tests and the CLI report to clients.
        """
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(64)
        self._server = server
        self.host, self.port = server.getsockname()[:2]
        self._stopping.clear()
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()
        return self.host, self.port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`stop`."""
        if self._server is None:
            self.start()
        self._stopping.wait()

    def stop(self) -> None:
        """Tear the broker down without flushing anything extra.

        Deliberately crash-equivalent: because every accepted mutation
        was journaled before its reply, ``stop()`` and SIGKILL leave
        the same recoverable on-disk state — which is what the torn-
        journal and kill tests rely on.
        """
        self._stopping.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None
        for conn in list(self._live_conns):
            try:
                conn.close()
            except OSError:
                pass
        if self._journal is not None:
            try:
                self._journal.close()
            except OSError:
                pass
            self._journal = None

    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                break
            self._live_conns.add(conn)
            threading.Thread(target=self._serve_conn, args=(conn,),
                             daemon=True).start()

    # -- one connection -----------------------------------------------------

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        stream = FrameStream(conn, metrics=self.metrics)
        node = ""
        try:
            while not self._stopping.is_set():
                message = stream.recv_eof()
                if message is None:
                    break
                tag, header, blobs = message
                if tag == TAG_HELLO:
                    node = str(header.get("node", ""))
                    with self._lock:
                        self._conns_by_node[node] = \
                            self._conns_by_node.get(node, 0) + 1
                    stream.send(TAG_OK, {"version": BROKER_VERSION})
                    continue
                reply_tag, reply_header, reply_blobs = self._dispatch(
                    tag, header, blobs, node)
                stream.send(reply_tag, reply_header, reply_blobs)
        except (FrameError, OSError):
            # Torn frame or dropped connection: the frame protocol
            # cannot resynchronize, so the connection dies here and the
            # client's retry opens a fresh one.
            self.metrics.count("net.conns.dropped")
        finally:
            self._live_conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass
            if node:
                self._disconnect_node(node)

    def _disconnect_node(self, node: str) -> None:
        """Expire the node's live leases once its last connection dies.

        This is lease-expiry-on-disconnect: the reclaim machinery sees
        an already-expired lease (attempt history intact) instead of
        waiting out the lease clock.  A node that merely reconnected
        keeps its leases — only the *last* connection's loss expires.
        """
        now = self.clock()
        with self._lock:
            remaining = self._conns_by_node.get(node, 1) - 1
            if remaining > 0:
                self._conns_by_node[node] = remaining
                return
            self._conns_by_node.pop(node, None)
            for index, lease in list(self._leases.items()):
                if lease.node != node or lease.released:
                    continue
                if index in self._results or index in self._tombstones:
                    continue
                if lease.expires_at > now:
                    self._leases[index] = replace(lease, expires_at=now)
                    self.metrics.count("net.lease.disconnect_expired")

    # -- verb dispatch ------------------------------------------------------

    def _dispatch(self, tag: int, header: dict, blobs: List[bytes],
                  node: str) -> Tuple[int, dict, List[bytes]]:
        with self._lock:
            if tag == TAG_MANIFEST:
                return TAG_OK, {"manifest": self._manifest}, []
            if tag == TAG_PUBLISH:
                return self._handle_publish(header)
            if tag == TAG_CLAIM:
                return self._handle_claim(header, node)
            if tag == TAG_HEARTBEAT:
                return self._handle_heartbeat(header, node)
            if tag == TAG_RELEASE:
                return self._handle_release(header, node)
            if tag == TAG_RETIRE:
                return self._handle_retire(header)
            if tag == TAG_RESULT:
                return self._handle_result(header, node)
            if tag == TAG_CORPUS:
                return self._handle_corpus(header, blobs)
            if tag == TAG_COLLECT_RESULTS:
                fingerprint = header.get("fingerprint", "")
                results = []
                for index in sorted(self._results):
                    payload = self._results[index]
                    if payload.get("fingerprint") != fingerprint:
                        self.metrics.count("dist.results.foreign")
                        continue
                    results.append(payload)
                return TAG_OK, {"results": results}, []
            if tag == TAG_COLLECT_STONES:
                stones = [[index, stone] for index, stone
                          in sorted(self._tombstones.items())]
                return TAG_OK, {"tombstones": stones}, []
            if tag == TAG_COLLECT_CORPUS:
                deltas = [[index, sha] for index, sha
                          in sorted(self._corpus.items())]
                return TAG_OK, {"deltas": deltas}, []
            if tag == TAG_SWEEP:
                return TAG_OK, {"retired": self._sweep()}, []
            if tag == TAG_DRAINED:
                drained = bool(self._jobs) and all(
                    self._settled(index) for index in self._jobs)
                return TAG_OK, {"drained": drained}, []
            if tag == TAG_BLOB_HAVE:
                digests = header.get("digests", [])
                missing = [d for d in digests if d not in self.blobs]
                return TAG_OK, {"missing": missing}, []
            if tag == TAG_BLOB_PUT:
                stored = 0
                for data in blobs:
                    self.blobs.put(data)
                    stored += 1
                return TAG_OK, {"stored": stored}, []
            if tag == TAG_BLOB_GET:
                found, out = [], []
                for digest in header.get("digests", []):
                    data = self.blobs.get(digest)
                    if data is not None:
                        found.append(digest)
                        out.append(data)
                return TAG_OK, {"found": found}, out
            return TAG_ERROR, {"error": f"unknown verb tag {tag}",
                               "kind": "protocol"}, []

    # -- verb implementations (all called under the lock) -------------------

    def _settled(self, index: int) -> bool:
        return index in self._results or index in self._tombstones

    def _handle_publish(self, header: dict) -> Tuple[int, dict,
                                                     List[bytes]]:
        fingerprint = header.get("fingerprint", "")
        if self._manifest is not None \
                and self._manifest.get("fingerprint") != fingerprint:
            served = self._manifest.get("fingerprint", "?")[:12]
            return TAG_ERROR, {
                "error": f"broker already serves campaign {served}, not "
                         f"{fingerprint[:12]}; use a fresh broker",
                "kind": "mismatch"}, []
        shared_config = header.get("shared_config")
        if self._manifest is not None \
                and self._manifest.get("shared_config") is not None:
            # The original publish's config base stays authoritative
            # for already-stored records (see WorkQueue.publish).
            shared_config = self._manifest.get("shared_config")
        records = header.get("jobs", [])
        published = 0
        for record in records:
            try:
                index = int(record["job_index"])
            except (KeyError, TypeError, ValueError):
                continue
            sha = record.get("payload", {}).get("sha", "")
            if sha not in self.blobs:
                return TAG_ERROR, {
                    "error": f"job {index} references missing blob "
                             f"{sha[:12]}; blob-put it first",
                    "kind": "missing-blob"}, []
            if self._jobs.get(index) == record:
                self.metrics.count("dist.jobs.unchanged")
                continue
            self._journal_append({"kind": "job", "job": record})
            self._jobs[index] = record
            published += 1
            self.metrics.count("dist.jobs.published")
        manifest = {
            "kind": "manifest",
            "version": self._manifest.get("version", BROKER_VERSION)
            if self._manifest else BROKER_VERSION,
            "fingerprint": fingerprint,
            "total_jobs": header.get("total_jobs", len(records)),
            "lease_duration": header.get("lease_duration", 30.0),
            "max_attempts": header.get("max_attempts", 3),
            "retry_backoff": header.get("retry_backoff", 0.25),
            "retry_jitter": header.get("retry_jitter", 0.0),
            "shared_config": shared_config,
        }
        if manifest != self._manifest:
            self._journal_append({"kind": "manifest",
                                  "manifest": manifest})
            self._manifest = manifest
        return TAG_OK, {"published": published}, []

    def _handle_claim(self, header: dict,
                      node: str) -> Tuple[int, dict, List[bytes]]:
        if self._manifest is None:
            return TAG_OK, {"claims": []}, []
        limit = max(1, int(header.get("limit", 1)))
        now = self.clock()
        claims = []
        for index in sorted(self._jobs):
            if len(claims) >= limit:
                break
            taken = self._claim_one(index, node, now)
            if taken is not None:
                record, lease = taken
                claims.append({"job": record, "lease": lease.to_dict()})
        return TAG_OK, {"claims": claims}, []

    def _claim_one(self, index: int, node: str,
                   now: float) -> Optional[Tuple[dict, Lease]]:
        """One job's claim decision — the in-memory twin of
        :meth:`repro.fuzz.dist.WorkQueue.claim`."""
        if self._settled(index):
            return None
        record = self._jobs.get(index)
        if record is None:
            return None
        manifest = self._manifest or {}
        duration = float(manifest.get("lease_duration", 30.0))
        previous = self._leases.get(index)
        if previous is None:
            lease = Lease(node=node, attempt=1, claimed_at=now,
                          expires_at=now + duration)
            self._leases[index] = lease
            self.metrics.count("dist.lease.claims")
            return record, lease
        if previous.expires_at > now and not previous.released:
            return None  # live lease
        if previous.attempt >= int(manifest.get("max_attempts", 3)):
            self._retire(index, previous)
            return None
        backoff = retry_delay(
            float(manifest.get("retry_backoff", 0.25)),
            previous.attempt,
            float(manifest.get("retry_jitter", 0.0)),
            manifest.get("fingerprint", ""), index)
        if now < previous.expires_at + backoff:
            return None  # still backing off
        lease = Lease(node=node, attempt=previous.attempt + 1,
                      claimed_at=now, expires_at=now + duration)
        self._leases[index] = lease
        self.metrics.count("dist.lease.reclaims")
        return record, lease

    def _handle_heartbeat(self, header: dict,
                          node: str) -> Tuple[int, dict, List[bytes]]:
        try:
            index = int(header["job_index"])
            duration = float(header["lease_duration"])
        except (KeyError, TypeError, ValueError):
            return TAG_OK, {"renewed": False}, []
        current = self._leases.get(index)
        if current is None or current.node != node:
            self.metrics.count("dist.lease.lost")
            return TAG_OK, {"renewed": False}, []
        self._leases[index] = replace(
            current, expires_at=self.clock() + duration)
        self.metrics.count("dist.heartbeats")
        return TAG_OK, {"renewed": True}, []

    def _handle_release(self, header: dict,
                        node: str) -> Tuple[int, dict, List[bytes]]:
        try:
            index = int(header["job_index"])
            lease = Lease.from_dict(header["lease"])
        except (KeyError, TypeError, ValueError):
            return TAG_OK, {}, []
        self._leases[index] = Lease(
            node=node or lease.node, attempt=lease.attempt,
            claimed_at=lease.claimed_at, expires_at=self.clock(),
            released=True, failure_kind=str(header.get("failure_kind", "")),
            error=str(header.get("error", "")))
        self.metrics.count("dist.lease.released")
        return TAG_OK, {}, []

    def _handle_retire(self, header: dict) -> Tuple[int, dict,
                                                    List[bytes]]:
        try:
            index = int(header["job_index"])
            lease = Lease.from_dict(header["lease"])
        except (KeyError, TypeError, ValueError):
            return TAG_OK, {"retired": False}, []
        return TAG_OK, {"retired": self._retire(index, lease)}, []

    def _retire(self, index: int, lease: Lease) -> bool:
        if index in self._tombstones:
            return False
        reason = REASON_QUARANTINE if lease.released else REASON_NODE_LOST
        stone = {
            "kind": "tombstone",
            "reason": reason,
            "attempts": lease.attempt,
            "node": lease.node,
            "failure_kind": lease.failure_kind or reason,
            "error": lease.error or (f"lease of node {lease.node!r} "
                                     f"expired (attempt {lease.attempt})"),
        }
        self._journal_append({"kind": "tombstone", "job_index": index,
                              "stone": stone})
        self._tombstones[index] = stone
        self.metrics.count("dist.tombstones")
        return True

    def _handle_result(self, header: dict,
                       node: str) -> Tuple[int, dict, List[bytes]]:
        result = header.get("result")
        if not isinstance(result, dict):
            return TAG_ERROR, {"error": "result verb without a result",
                               "kind": "protocol"}, []
        try:
            index = int(result["job_index"])
        except (KeyError, TypeError, ValueError):
            return TAG_ERROR, {"error": "result without job_index",
                               "kind": "protocol"}, []
        if index in self._results:
            self.metrics.count("dist.results.duplicate")
            return TAG_OK, {"published": False}, []
        payload = {
            "kind": "result",
            "fingerprint": header.get("fingerprint", ""),
            "node": node,
            "attempt": int(header.get("attempt", 1)),
            "result": result,
        }
        self._journal_append({"kind": "result", "job_index": index,
                              "payload": payload})
        self._results[index] = payload
        self._leases.pop(index, None)
        self.metrics.count("dist.results.published")
        return TAG_OK, {"published": True}, []

    def _handle_corpus(self, header: dict,
                       blobs: List[bytes]) -> Tuple[int, dict,
                                                    List[bytes]]:
        try:
            index = int(header["job_index"])
        except (KeyError, TypeError, ValueError):
            return TAG_OK, {"ok": False}, []
        if not blobs:
            return TAG_OK, {"ok": False}, []
        sha = self.blobs.put(blobs[0])
        self._journal_append({"kind": "corpus", "job_index": index,
                              "sha": sha})
        self._corpus[index] = sha
        self.metrics.count("dist.corpus.published")
        return TAG_OK, {"ok": True}, []

    def _sweep(self) -> int:
        manifest = self._manifest
        if manifest is None:
            return 0
        now = self.clock()
        max_attempts = int(manifest.get("max_attempts", 3))
        retired = 0
        for index in sorted(self._jobs):
            if self._settled(index):
                continue
            lease = self._leases.get(index)
            if lease is None:
                continue
            if lease.expires_at > now and not lease.released:
                continue
            if not lease.released:
                self.metrics.count("dist.lease.expired")
            if lease.attempt >= max_attempts:
                if self._retire(index, lease):
                    retired += 1
                    if not lease.released:
                        self.metrics.count("dist.node_lost")
        return retired

    # -- introspection (tests, smoke harnesses) -----------------------------

    def leases(self) -> Dict[int, Lease]:
        """A snapshot of the live lease table."""
        with self._lock:
            return dict(self._leases)


# ---------------------------------------------------------------------------
# The client.
# ---------------------------------------------------------------------------


class SocketQueue:
    """A broker-backed :class:`~repro.fuzz.dist.Transport`.

    One connection, shared by the caller's threads under a lock
    (:class:`~repro.fuzz.dist.NodeRunner`'s heartbeat thread and main
    loop both go through it).  Any connection failure — broker restart,
    chaos-injected drop, torn frame — closes the socket and the next
    request reconnects and retries until ``connect_timeout`` is spent;
    since every verb is either idempotent or first-writer-wins-deduped,
    a retried request after a lost reply is always safe.

    The per-node transfer cache (:class:`~repro.fuzz.wire.BlobStore`,
    memory-backed) and the bounded decode LRU make repeated claims over
    the same seed cost one ``blob-get`` and one decode, total.
    """

    def __init__(self, address: str, node: str = "",
                 clock: Callable[[], float] = time.time,
                 payload_format: str = FORMAT_BITCODE,
                 connect_timeout: float = 60.0,
                 retry_interval: float = 0.2,
                 socket_timeout: float = 60.0) -> None:
        self.host, self.port = parse_address(address)
        self.node = node or f"node-{os.getpid()}"
        self.clock = clock
        self.payload_format = payload_format
        self.connect_timeout = connect_timeout
        self.retry_interval = retry_interval
        self.socket_timeout = socket_timeout
        self.metrics = MetricsRegistry()
        self.blobs = BlobStore(metrics=self.metrics)
        self.decode_cache = DecodeCache(metrics=self.metrics)
        self._lock = threading.RLock()
        self._stream: Optional[FrameStream] = None
        self._manifest_cache: Optional[dict] = None
        self._work_dir: Optional[str] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection management ----------------------------------------------

    def _connect(self) -> FrameStream:
        if self._stream is not None:
            return self._stream
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.socket_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        stream = FrameStream(sock, metrics=self.metrics)
        stream.send(TAG_HELLO, {"node": self.node})
        tag, _header, _blobs = stream.recv()
        if tag != TAG_OK:
            stream.close()
            raise QueueError(f"broker {self.address} rejected hello")
        self._stream = stream
        return stream

    def _drop(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def _request(self, tag: int, header: dict,
                 blobs: Sequence[bytes] = ()) -> Tuple[int, dict,
                                                       List[bytes]]:
        with self._lock:
            deadline = time.monotonic() + self.connect_timeout
            while True:
                try:
                    stream = self._connect()
                    stream.send(tag, header, blobs)
                    reply_tag, reply_header, reply_blobs = stream.recv()
                except (OSError, FrameError) as exc:
                    self._drop()
                    self.metrics.count("wire.reconnects")
                    if time.monotonic() >= deadline:
                        raise QueueError(
                            f"broker {self.address} unreachable: "
                            f"{exc}") from exc
                    time.sleep(self.retry_interval)
                    continue
                if reply_tag == TAG_ERROR:
                    message = reply_header.get("error", "broker error")
                    if reply_header.get("kind") == "mismatch":
                        raise QueueMismatch(message)
                    raise QueueError(message)
                return reply_tag, reply_header, reply_blobs

    # -- Transport: manifest and publish ------------------------------------

    def manifest(self) -> Optional[dict]:
        if self._manifest_cache is not None:
            return self._manifest_cache
        try:
            _tag, header, _blobs = self._request(TAG_MANIFEST, {})
        except QueueError:
            return None  # broker not up yet: same as "not published yet"
        manifest = header.get("manifest")
        if isinstance(manifest, dict):
            self._manifest_cache = manifest
            return manifest
        return None

    def publish(self, jobs: Sequence[ShardJob], fingerprint: str,
                total_jobs: Optional[int] = None,
                lease_duration: float = 30.0, max_attempts: int = 3,
                retry_backoff: float = 0.25,
                retry_jitter: float = 0.0) -> None:
        self._manifest_cache = None
        existing = self.manifest()
        if existing is not None \
                and existing.get("fingerprint") != fingerprint:
            raise QueueMismatch(
                f"broker {self.address} already serves campaign "
                f"{existing.get('fingerprint', '?')[:12]}, not "
                f"{fingerprint[:12]}")
        shared_config = existing.get("shared_config") if existing else None
        if shared_config is None and jobs:
            shared_config = _jsonified(asdict(jobs[0].config))
        records = []
        payloads: Dict[int, Tuple[bytes, str]] = {}
        blobs_by_digest: Dict[str, bytes] = {}
        for job in jobs:
            data, actual_format = encode_payload(
                job.text, self.payload_format, metrics=self.metrics)
            sha = blob_digest(data)
            blobs_by_digest[sha] = data
            records.append(job_to_wire(job, shared_config, sha,
                                       actual_format))
        digests = sorted(blobs_by_digest)
        if digests:
            _tag, header, _blobs = self._request(
                TAG_BLOB_HAVE, {"digests": digests})
            missing = [d for d in header.get("missing", [])
                       if d in blobs_by_digest]
            if missing:
                self._request(TAG_BLOB_PUT, {"digests": missing},
                              [blobs_by_digest[d] for d in missing])
            for digest in digests:
                self.blobs.put(blobs_by_digest[digest])
        self._request(TAG_PUBLISH, {
            "fingerprint": fingerprint,
            "total_jobs": (total_jobs if total_jobs is not None
                           else len(jobs)),
            "lease_duration": lease_duration,
            "max_attempts": max_attempts,
            "retry_backoff": retry_backoff,
            "retry_jitter": retry_jitter,
            "shared_config": shared_config,
            "jobs": records,
        })
        self._manifest_cache = None

    # -- Transport: claims and results --------------------------------------

    def claim_next(self, limit: int = 1) -> List[Tuple[ShardJob, Lease]]:
        _tag, header, _blobs = self._request(TAG_CLAIM, {"limit": limit})
        claimed: List[Tuple[ShardJob, Lease]] = []
        for item in header.get("claims", []):
            try:
                record = item["job"]
                lease = Lease.from_dict(item["lease"])
            except (KeyError, TypeError, ValueError):
                continue
            job = self._resolve_job(record)
            if job is None:
                continue  # unresolvable: the lease expires on its own
            claimed.append((job, lease))
        return claimed

    def _resolve_job(self, record: dict) -> Optional[ShardJob]:
        manifest = self.manifest()
        if manifest is None:
            return None
        shared_config = manifest.get("shared_config")
        if not isinstance(shared_config, dict):
            return None
        payload = record.get("payload", {})
        sha = payload.get("sha", "")
        data = self.blobs.get(sha)
        if data is not None:
            self.metrics.count("wire.blob_cache.hit")
        else:
            self.metrics.count("wire.blob_cache.miss")
            data = self._fetch_blob(sha)
            if data is None:
                return None
        try:
            text = self.decode_cache.text(sha, data,
                                          payload.get("format", "text"))
            return job_from_wire(record, shared_config, text)
        except (KeyError, TypeError, ValueError):
            self.metrics.count("wire.jobs.unresolvable")
            return None

    def _fetch_blob(self, sha: str) -> Optional[bytes]:
        _tag, header, blobs = self._request(TAG_BLOB_GET,
                                            {"digests": [sha]})
        found = header.get("found", [])
        if not found or not blobs or found[0] != sha:
            return None
        self.metrics.count("wire.blob.fetched")
        self.metrics.count("wire.blob.fetched_bytes", len(blobs[0]))
        self.blobs.put(blobs[0])
        return blobs[0]

    def heartbeat(self, job_index: int, lease_duration: float) -> bool:
        try:
            _tag, header, _blobs = self._request(TAG_HEARTBEAT, {
                "job_index": job_index, "lease_duration": lease_duration})
        except QueueError:
            self.metrics.count("dist.lease.lost")
            return False
        return bool(header.get("renewed", False))

    def release_for_retry(self, job_index: int, lease: Lease,
                          failure_kind: str, error: str) -> None:
        self._request(TAG_RELEASE, {
            "job_index": job_index, "lease": lease.to_dict(),
            "failure_kind": failure_kind, "error": error})

    def retire(self, job_index: int, lease: Lease) -> bool:
        _tag, header, _blobs = self._request(TAG_RETIRE, {
            "job_index": job_index, "lease": lease.to_dict()})
        return bool(header.get("retired", False))

    def publish_result(self, result: ShardResult, fingerprint: str,
                       attempt: int = 1) -> bool:
        _tag, header, _blobs = self._request(TAG_RESULT, {
            "fingerprint": fingerprint, "attempt": attempt,
            "result": result_to_dict(result)})
        return bool(header.get("published", False))

    def publish_corpus(self, job_index: int, journal_path: str) -> bool:
        try:
            with open(journal_path, "rb") as stream:
                data = stream.read()
        except OSError:
            return False
        _tag, header, _blobs = self._request(
            TAG_CORPUS, {"job_index": job_index}, [data])
        return bool(header.get("ok", False))

    def corpus_paths(self) -> List[Tuple[int, str]]:
        """Materialize the broker's corpus deltas into local files."""
        _tag, header, _blobs = self._request(TAG_COLLECT_CORPUS, {})
        if self._work_dir is None:
            self._work_dir = tempfile.mkdtemp(
                prefix=f"repro-net-{self.node}-")
        deltas: List[Tuple[int, str]] = []
        for item in header.get("deltas", []):
            try:
                index, sha = int(item[0]), str(item[1])
            except (TypeError, ValueError, IndexError):
                continue
            data = self.blobs.get(sha)
            if data is None:
                data = self._fetch_blob(sha)
                if data is None:
                    continue
            path = os.path.join(self._work_dir,
                                f"job-{index:06d}.corpus.jsonl")
            with open(path, "wb") as stream:
                stream.write(data)
            deltas.append((index, path))
        return sorted(deltas)

    # -- Transport: collection and sweeping ---------------------------------

    def collect_results(self, fingerprint: str) -> Dict[int, ShardResult]:
        _tag, header, _blobs = self._request(
            TAG_COLLECT_RESULTS, {"fingerprint": fingerprint})
        results: Dict[int, ShardResult] = {}
        for payload in header.get("results", []):
            try:
                result = result_from_dict(payload["result"])
            except (KeyError, TypeError):
                continue
            results[result.job_index] = result
        return results

    def collect_tombstones(self) -> Dict[int, dict]:
        _tag, header, _blobs = self._request(TAG_COLLECT_STONES, {})
        stones: Dict[int, dict] = {}
        for item in header.get("tombstones", []):
            try:
                stones[int(item[0])] = dict(item[1])
            except (TypeError, ValueError, IndexError):
                continue
        return stones

    def sweep(self) -> int:
        _tag, header, _blobs = self._request(TAG_SWEEP, {})
        return int(header.get("retired", 0))

    def drained(self) -> bool:
        _tag, header, _blobs = self._request(TAG_DRAINED, {})
        return bool(header.get("drained", False))

    def close(self) -> None:
        with self._lock:
            self._drop()
