"""The bug-finding campaign (paper §V-A, Table I).

Enables the full seeded-bug registry, fuzzes a corpus with the in-process
driver, attributes findings to seeded bugs, and renders a Table-I-style
report: issue id, component, status, type, description, plus whether (and
after how many iterations) the campaign rediscovered each bug.

The campaign is a (corpus file × pipeline) job matrix.  Job execution and
sharding live in :mod:`repro.fuzz.parallel`; this module holds the
declarative configuration and the merged report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..mutate import MutatorConfig
from ..obs import MetricsRegistry
from ..opt.bugs import SeededBug, all_bug_ids, all_bugs
from ..tv import RefinementConfig
from .driver import ConfigError, FuzzConfig, StageTimings
from .feedback import FeedbackConfig, FeedbackStats
from .findings import Finding

# Seed-derivation contract: job ``i`` of the matrix fuzzes with driver
# base seed ``base_seed + i * JOB_SEED_STRIDE`` and refinement-input seed
# ``base_seed + i``.  The stride is a prime far larger than any per-job
# iteration budget, so the seed ranges of different jobs never overlap
# and a finding's (file, seed) pair identifies its job regardless of how
# the matrix was sharded across workers.
JOB_SEED_STRIDE = 1_000_003


def _default_fuzz_template() -> FuzzConfig:
    return FuzzConfig(mutator=MutatorConfig(max_mutations=3),
                      tv=RefinementConfig(max_inputs=16))


@dataclass
class CampaignConfig:
    corpus_size: int = 48
    corpus_seed: int = 0
    mutants_per_file: Optional[int] = 60
    # The paper ran two campaigns: LLVM's middle-end via -O2, and the
    # AArch64 backend (our codegen pass).  Each file is fuzzed under every
    # pipeline listed here.
    pipelines: Sequence[str] = ("O2", "backend", "O2+backend")
    base_seed: int = 0
    # Convenience shorthand for ``fuzz.tv.max_inputs`` (None = use the
    # template's value, which defaults to 16).
    max_inputs: Optional[int] = None
    enabled_bugs: Optional[Sequence[str]] = None   # None = all 33
    time_budget: Optional[float] = None             # per-file cap, seconds
    # Confirm each attribution by replaying the seed with ONLY that bug
    # enabled (the paper's re-run-with-same-seed triage workflow).
    confirm_attributions: bool = True
    # Worker processes for the job matrix.  1 = run on the calling
    # process (the exact sequential path; results are bit-identical to a
    # parallel run either way because merging is ordered by job index).
    workers: int = 1
    # Whole-campaign wall-clock cap, seconds.  On expiry no new jobs are
    # started; in-flight jobs are drained and merged, the rest are
    # counted in ``CampaignReport.skipped_jobs``.
    global_time_budget: Optional[float] = None
    # -- resilience knobs (all opt-in; defaults preserve the fast path) --
    # Per-job wall-clock deadline, seconds.  Enforced cooperatively at
    # the driver's stage boundaries; with workers > 1 a supervisor
    # additionally hard-kills any worker that exceeds
    # ``job_deadline * grace_factor`` and records the job as a ``hang``.
    job_deadline: Optional[float] = None
    grace_factor: float = 2.0
    # Jobs that hang or kill their worker are retried with exponential
    # backoff (``retry_backoff * 2**attempt`` seconds) up to this many
    # times, then quarantined into ``CampaignReport.quarantined``.
    max_job_retries: int = 0
    retry_backoff: float = 0.25
    # Optional decorrelation jitter on the retry backoff: each delay is
    # stretched by up to ``retry_jitter`` of itself (a factor in
    # ``[1, 1 + retry_jitter)``), so a fleet of workers retrying the
    # same transient fault does not stampede in lockstep.  The jitter is
    # *seeded from the campaign fingerprint* (plus job index and attempt
    # number), so a re-run of the same campaign jitters identically —
    # reproducibility is preserved.  0.0 (the default) disables it and
    # keeps the exact historical delays.
    retry_jitter: float = 0.0
    # Directory for the campaign's checkpoint journal.  Each completed
    # shard is appended (fsync'd JSONL); ``execute(resume=True)`` skips
    # already-journaled jobs and merges their cached results.
    checkpoint_dir: Optional[str] = None
    # -- observability knobs (repro.obs; excluded from the checkpoint
    # fingerprint, so enabling them never invalidates completed work) --
    # Directory for per-job span traces (one JSONL file per job).
    # None = tracing off, which is the free path.
    trace_dir: Optional[str] = None
    # Keep one span in every 1/trace_sample (deterministic sampling).
    trace_sample: float = 1.0
    # Coverage-guided fuzzing for every job (see repro.fuzz.feedback).
    # None = use the fuzz template's own (disabled by default).  The
    # corpus_dir inside is an operational path knob and is excluded from
    # the checkpoint fingerprint, like trace_dir.
    feedback: Optional[FeedbackConfig] = None
    # Distributed execution (see repro.fuzz.dist): when set, execute()
    # runs as the *coordinator* of a multi-node campaign — the job
    # matrix is published to ``dist.queue_dir`` and fuzzed by external
    # ``NodeRunner`` processes under time-bounded leases; node loss is
    # handled by lease expiry + reclaim.  None = single-host execution.
    # Like checkpoint_dir/trace_dir, this is an operational knob and is
    # excluded from the campaign fingerprint.
    dist: Optional["DistConfig"] = None  # noqa: F821 — see repro.fuzz.dist
    # Per-job FuzzConfig template; each job gets a ``dataclasses.replace``
    # of it with the job's pipeline, seeds, and enabled bugs filled in.
    fuzz: FuzzConfig = field(default_factory=_default_fuzz_template)

    def enabled(self) -> List[str]:
        return list(self.enabled_bugs if self.enabled_bugs is not None
                    else all_bug_ids())

    def job_config(self, job_index: int, pipeline: str) -> FuzzConfig:
        """The per-job FuzzConfig (the seed-derivation contract above)."""
        tv = replace(self.fuzz.tv,
                     max_inputs=(self.max_inputs if self.max_inputs is not None
                                 else self.fuzz.tv.max_inputs),
                     seed=self.base_seed + job_index)
        return replace(self.fuzz,
                       pipeline=pipeline,
                       enabled_bugs=self.enabled(),
                       tv=tv,
                       base_seed=self.base_seed + job_index * JOB_SEED_STRIDE,
                       feedback=(self.feedback if self.feedback is not None
                                 else self.fuzz.feedback))

    def validate(self) -> "CampaignConfig":
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.corpus_size < 0:
            raise ConfigError(
                f"corpus_size must be >= 0, got {self.corpus_size}")
        if self.corpus_seed < 0 or self.base_seed < 0:
            raise ConfigError("corpus_seed and base_seed must be >= 0")
        if not self.pipelines:
            raise ConfigError("at least one pipeline is required")
        if self.global_time_budget is not None \
                and self.global_time_budget < 0:
            raise ConfigError("global_time_budget must be >= 0, "
                              f"got {self.global_time_budget}")
        if self.job_deadline is not None and self.job_deadline <= 0:
            raise ConfigError(
                f"job_deadline must be positive, got {self.job_deadline}")
        if self.grace_factor < 1.0:
            raise ConfigError(
                f"grace_factor must be >= 1, got {self.grace_factor}")
        if self.max_job_retries < 0:
            raise ConfigError("max_job_retries must be >= 0, "
                              f"got {self.max_job_retries}")
        if self.retry_backoff < 0:
            raise ConfigError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}")
        if self.retry_jitter < 0:
            raise ConfigError(
                f"retry_jitter must be >= 0, got {self.retry_jitter}")
        if self.dist is not None:
            self.dist.validate()
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigError("trace_sample must be in [0, 1], "
                              f"got {self.trace_sample}")
        for pipeline in self.pipelines:
            self.job_config(0, pipeline).validate(
                iterations=self.mutants_per_file,
                time_budget=self.time_budget,
                require_budget=True)
        return self


@dataclass
class BugOutcome:
    bug: SeededBug
    found: bool = False
    first_file: str = ""
    first_seed: int = -1
    findings: int = 0


@dataclass
class ShardFailure:
    """A job whose worker died, hung, or raised — contained, not fatal.

    ``kind`` classifies the failure: ``"error"`` (the job raised),
    ``"hang"`` (deadline exceeded, cooperatively or via supervisor
    kill), ``"crash"`` (the worker process died), ``"node_lost"`` (a
    distributed campaign lost every node that leased the job — see
    :mod:`repro.fuzz.dist`), or ``"parse"`` (the seed file did not
    parse; these live in :attr:`CampaignReport.parse_failures`).
    """

    job_index: int
    file: str
    pipeline: str
    error: str
    kind: str = "error"


@dataclass
class QuarantinedJob:
    """A poison job retired after exhausting its retry budget.

    Carries everything needed to reproduce the kill outside the
    campaign: the seed file, pipeline, and the job's driver base seed.
    """

    job_index: int
    file: str
    pipeline: str
    seed: int
    attempts: int
    error: str


@dataclass
class CampaignReport:
    outcomes: Dict[str, BugOutcome] = field(default_factory=dict)
    total_iterations: int = 0
    total_findings: int = 0
    unattributed: List[Finding] = field(default_factory=list)
    elapsed: float = 0.0
    workers: int = 1
    # Per-stage totals summed over every job, plus the same broken down
    # by the worker process that ran the job ("pid-<n>").
    timings: StageTimings = field(default_factory=StageTimings)
    worker_timings: Dict[str, StageTimings] = field(default_factory=dict)
    failed_shards: List[ShardFailure] = field(default_factory=list)
    # Seed files that did not parse (kind="parse"), recorded per job so
    # a corrupt corpus member is visible instead of silently vanishing.
    parse_failures: List[ShardFailure] = field(default_factory=list)
    # Poison jobs retired after max_job_retries hang/crash retries.
    quarantined: List[QuarantinedJob] = field(default_factory=list)
    # Jobs never started because the global time budget expired or a
    # graceful shutdown drained the campaign.
    skipped_jobs: int = 0
    # Jobs whose results were merged from a checkpoint journal.
    resumed_jobs: int = 0
    # A SIGINT/SIGTERM (or CampaignExecutor.request_stop) interrupted
    # the run; the report is a valid partial checkpointed state.
    interrupted: bool = False
    interrupt_signal: str = ""
    # Aggregate observability registry (repro.obs): the merge of every
    # completed job's per-shard registry plus campaign-level counters
    # (campaign.jobs.completed, campaign.retry.*, ...).  Its
    # ``deterministic()`` subset is identical across worker counts and
    # kill/resume cycles.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    # Merged coverage/corpus totals over every completed job (None when
    # no job ran with feedback enabled).
    feedback: Optional[FeedbackStats] = None

    def found_bugs(self) -> List[BugOutcome]:
        return [o for o in self.outcomes.values() if o.found]

    def found_by_kind(self) -> Tuple[int, int]:
        miscompilations = sum(1 for o in self.found_bugs()
                              if o.bug.kind == "miscompilation")
        crashes = sum(1 for o in self.found_bugs() if o.bug.kind == "crash")
        return miscompilations, crashes

    @property
    def throughput(self) -> float:
        """Mutants per wall-clock second."""
        if self.elapsed <= 0:
            return 0.0
        return self.total_iterations / self.elapsed

    def table(self) -> str:
        """Render the Table-I analog."""
        header = (f"{'Issue ID':<9} {'Component':<26} {'Status':<7} "
                  f"{'Type':<15} {'Found':<7} Description")
        rows = [header, "-" * len(header)]
        for outcome in self.outcomes.values():
            bug = outcome.bug
            found = "yes" if outcome.found else "no"
            rows.append(f"{bug.issue_id:<9} {bug.component:<26} "
                        f"{bug.status:<7} {bug.kind:<15} {found:<7} "
                        f"{bug.description}")
        miscompilations, crashes = self.found_by_kind()
        rows.append("-" * len(header))
        rows.append(f"found {len(self.found_bugs())} bugs: "
                    f"{miscompilations} miscompilations, {crashes} crashes "
                    "(paper: 33 = 19 + 14)")
        if self.feedback is not None:
            rows.append(
                f"coverage: {self.feedback.features_covered} features, "
                f"{self.feedback.corpus_entries} corpus entries "
                f"({self.feedback.admitted} admitted, "
                f"{self.feedback.distilled} distilled)")
        rows.extend(self.health_lines())
        return "\n".join(rows)

    def health_lines(self) -> List[str]:
        """Campaign-health footer: anything that did not run cleanly."""
        lines: List[str] = []
        if self.interrupted:
            signal_name = self.interrupt_signal or "stop request"
            lines.append(f"interrupted by {signal_name}; "
                         "partial report (checkpointed state is valid)")
        if self.resumed_jobs:
            lines.append(f"resumed {self.resumed_jobs} jobs from checkpoint")
        for failure in self.parse_failures:
            lines.append(f"parse failure: {failure.file} "
                         f"[{failure.pipeline}]: {failure.error}")
        for failure in self.failed_shards:
            lines.append(f"failed shard ({failure.kind}): {failure.file} "
                         f"[{failure.pipeline}] job {failure.job_index}: "
                         f"{failure.error}")
        for job in self.quarantined:
            lines.append(f"quarantined: {job.file} [{job.pipeline}] "
                         f"seed {job.seed} after {job.attempts} attempts: "
                         f"{job.error}")
        if self.skipped_jobs:
            lines.append(f"skipped {self.skipped_jobs} jobs "
                         "(budget/shutdown)")
        return lines


def new_report(config: CampaignConfig) -> CampaignReport:
    enabled = set(config.enabled())
    return CampaignReport(
        outcomes={bug.issue_id: BugOutcome(bug=bug) for bug in all_bugs()
                  if bug.issue_id in enabled},
        workers=config.workers)


def run_campaign(config: Optional[CampaignConfig] = None,
                 resume: bool = False) -> CampaignReport:
    """Run the campaign described by ``config`` and merge the report.

    Delegates to :class:`repro.fuzz.parallel.CampaignExecutor`;
    ``config.workers`` picks sequential (1) or sharded execution.
    ``resume=True`` (requires ``config.checkpoint_dir``) skips jobs
    already recorded in the checkpoint journal and merges their cached
    results.
    """
    from .parallel import CampaignExecutor
    return CampaignExecutor(config).execute(resume=resume)
