"""The bug-finding campaign (paper §V-A, Table I).

Enables the full seeded-bug registry, fuzzes a corpus with the in-process
driver, attributes findings to seeded bugs, and renders a Table-I-style
report: issue id, component, status, type, description, plus whether (and
after how many iterations) the campaign rediscovered each bug.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.parser import ParseError, parse_module
from ..mutate import MutatorConfig
from ..opt.bugs import SeededBug, all_bug_ids, all_bugs
from ..tv import RefinementConfig
from .corpus import generate_corpus
from .driver import FuzzConfig, FuzzDriver
from .findings import Finding


@dataclass
class CampaignConfig:
    corpus_size: int = 48
    corpus_seed: int = 0
    mutants_per_file: int = 60
    # The paper ran two campaigns: LLVM's middle-end via -O2, and the
    # AArch64 backend (our codegen pass).  Each file is fuzzed under every
    # pipeline listed here.
    pipelines: Sequence[str] = ("O2", "backend", "O2+backend")
    base_seed: int = 0
    max_inputs: int = 16
    enabled_bugs: Optional[Sequence[str]] = None   # None = all 33
    time_budget: Optional[float] = None             # per-file cap, seconds
    # Confirm each attribution by replaying the seed with ONLY that bug
    # enabled (the paper's re-run-with-same-seed triage workflow).
    confirm_attributions: bool = True


@dataclass
class BugOutcome:
    bug: SeededBug
    found: bool = False
    first_file: str = ""
    first_seed: int = -1
    findings: int = 0


@dataclass
class CampaignReport:
    outcomes: Dict[str, BugOutcome] = field(default_factory=dict)
    total_iterations: int = 0
    total_findings: int = 0
    unattributed: List[Finding] = field(default_factory=list)
    elapsed: float = 0.0

    def found_bugs(self) -> List[BugOutcome]:
        return [o for o in self.outcomes.values() if o.found]

    def found_by_kind(self) -> Tuple[int, int]:
        miscompilations = sum(1 for o in self.found_bugs()
                              if o.bug.kind == "miscompilation")
        crashes = sum(1 for o in self.found_bugs() if o.bug.kind == "crash")
        return miscompilations, crashes

    def table(self) -> str:
        """Render the Table-I analog."""
        header = (f"{'Issue ID':<9} {'Component':<26} {'Status':<7} "
                  f"{'Type':<15} {'Found':<7} Description")
        rows = [header, "-" * len(header)]
        for outcome in self.outcomes.values():
            bug = outcome.bug
            found = "yes" if outcome.found else "no"
            rows.append(f"{bug.issue_id:<9} {bug.component:<26} "
                        f"{bug.status:<7} {bug.kind:<15} {found:<7} "
                        f"{bug.description}")
        miscompilations, crashes = self.found_by_kind()
        rows.append("-" * len(header))
        rows.append(f"found {len(self.found_bugs())} bugs: "
                    f"{miscompilations} miscompilations, {crashes} crashes "
                    f"(paper: 33 = 19 + 14)")
        return "\n".join(rows)


def run_campaign(config: Optional[CampaignConfig] = None) -> CampaignReport:
    config = config or CampaignConfig()
    enabled = list(config.enabled_bugs if config.enabled_bugs is not None
                   else all_bug_ids())
    report = CampaignReport(outcomes={
        bug.issue_id: BugOutcome(bug=bug) for bug in all_bugs()
        if bug.issue_id in enabled
    })
    started = time.perf_counter()
    corpus = generate_corpus(config.corpus_size, config.corpus_seed)
    jobs = [(file_name, text, pipeline)
            for file_name, text in corpus
            for pipeline in config.pipelines]
    for job_index, (file_name, text, pipeline) in enumerate(jobs):
        try:
            module = parse_module(text, file_name)
        except ParseError:
            continue
        fuzz_config = FuzzConfig(
            pipeline=pipeline,
            enabled_bugs=enabled,
            mutator=MutatorConfig(max_mutations=3),
            tv=RefinementConfig(max_inputs=config.max_inputs,
                                seed=config.base_seed + job_index),
            base_seed=config.base_seed + job_index * 1_000_003,
        )
        driver = FuzzDriver(module, fuzz_config, file_name=file_name)
        if not driver.target_functions:
            continue
        result = driver.run(iterations=config.mutants_per_file,
                            time_budget=config.time_budget)
        report.total_iterations += result.iterations
        report.total_findings += len(result.findings)
        confirm_cache: Dict[str, FuzzDriver] = {}
        for finding in result.findings:
            if not finding.bug_ids:
                report.unattributed.append(finding)
                continue
            for bug_id in finding.bug_ids:
                outcome = report.outcomes.get(bug_id)
                if outcome is None:
                    continue
                if config.confirm_attributions and len(finding.bug_ids) > 1:
                    if not _confirm(module, file_name, bug_id, finding,
                                    fuzz_config, confirm_cache):
                        continue
                outcome.findings += 1
                if not outcome.found:
                    outcome.found = True
                    outcome.first_file = file_name
                    outcome.first_seed = finding.seed
    report.elapsed = time.perf_counter() - started
    return report


def _confirm(module, file_name: str, bug_id: str, finding: Finding,
             base_config: FuzzConfig,
             cache: Dict[str, FuzzDriver]) -> bool:
    """Replay the finding's seed with only ``bug_id`` enabled."""
    driver = cache.get(bug_id)
    if driver is None:
        solo_config = FuzzConfig(
            pipeline=base_config.pipeline,
            enabled_bugs=[bug_id],
            mutator=base_config.mutator,
            tv=base_config.tv,
            base_seed=base_config.base_seed,
        )
        driver = FuzzDriver(module, solo_config, file_name=file_name)
        cache[bug_id] = driver
    replayed = driver.run_one(finding.seed)
    return any(bug_id in f.bug_ids for f in replayed)
