"""Synthetic seed generators in the style of LLVM's unit tests.

The paper draws seeds from LLVM's 29,243-file IR test suite (small files,
mostly InstCombine regression tests).  Offline, this module generates a
deterministic seed set with the same flavor: small functions probing clamp
patterns, flagged arithmetic, shift/mask idioms, memory ping-pong across
opaque calls, saturating/min-max intrinsics, assume bundles, loops, and
multi-function files with inlinable helpers.  Several archetypes are
modeled directly on the paper's listings (noted inline).

This module used to be ``repro.fuzz.corpus``; it was renamed when the
*runtime* corpus (coverage-selected mutants, see
:mod:`repro.fuzz.corpus`) took that name.  The old module re-exports
these names with a :class:`DeprecationWarning` for one release.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

__all__ = ["ARCHETYPES", "STANDARD_WIDTHS", "corpus_modules",
           "generate_corpus", "generate_large_corpus"]

STANDARD_WIDTHS = (8, 16, 32, 64)


def _width(rng: random.Random) -> int:
    return rng.choice(STANDARD_WIDTHS)


def _const(rng: random.Random, width: int) -> int:
    mask = (1 << width) - 1
    choice = rng.random()
    if choice < 0.3:
        return rng.choice([0, 1, 2, 16, mask, mask >> 1]) & mask
    if choice < 0.6:
        return rng.randrange(0, 256) & mask
    value = rng.getrandbits(width)
    return value & mask


def _signed_const(rng: random.Random, width: int) -> int:
    value = _const(rng, width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


# ---------------------------------------------------------------------------
# Archetypes.  Each returns .ll text for one file.
# ---------------------------------------------------------------------------


def archetype_clamp_select(rng: random.Random, index: int) -> str:
    """Fig. 1 / Listing 1 flavor: icmp + select range tests."""
    w = _width(rng)
    c1 = _signed_const(rng, w)
    c2 = _const(rng, w)
    pred1 = rng.choice(["slt", "sgt", "ult", "ugt"])
    pred2 = rng.choice(["ult", "ugt", "slt", "sle"])
    return f"""
define i{w} @clamp_{index}(i{w} %x, i{w} %low, i{w} %high) {{
  %t0 = icmp {pred1} i{w} %x, {c1}
  %t1 = select i1 %t0, i{w} %low, i{w} %high
  %t2 = add i{w} %x, {_signed_const(rng, w)}
  %t3 = icmp {pred2} i{w} %t2, {c2}
  %r = select i1 %t3, i{w} %x, i{w} %t1
  ret i{w} %r
}}
"""


def archetype_flagged_arithmetic(rng: random.Random, index: int) -> str:
    w = _width(rng)
    op1 = rng.choice(["add", "sub", "mul"])
    op2 = rng.choice(["add", "sub", "mul", "shl"])
    flags1 = rng.choice(["", " nsw", " nuw", " nuw nsw"])
    flags2 = rng.choice(["", " nsw", " nuw"])
    op3 = rng.choice(["and", "or", "xor"])
    return f"""
define i{w} @arith_{index}(i{w} %a, i{w} %b) {{
  %t0 = {op1}{flags1} i{w} %a, {_signed_const(rng, w)}
  %t1 = {op2}{flags2} i{w} %t0, %b
  %t2 = {op3} i{w} %t1, %a
  ret i{w} %t2
}}
"""


def archetype_memory_pingpong(rng: random.Random, index: int) -> str:
    """Listing 4 flavor: loads separated by a clobbering call."""
    w = _width(rng)
    return f"""
declare void @clobber(ptr)

define i{w} @test9_{index}(ptr %p, ptr %q) {{
  %a = load i{w}, ptr %q
  call void @clobber(ptr %p)
  %b = load i{w}, ptr %q
  %c = sub i{w} %a, %b
  ret i{w} %c
}}
"""


def archetype_minmax_offset(rng: random.Random, index: int) -> str:
    """Listing 15 flavor: min/max intrinsic over a flagged add."""
    w = _width(rng)
    kind = rng.choice(["smax", "smin", "umax", "umin"])
    flags = rng.choice(["", " nuw", " nsw", " nuw nsw"])
    return f"""
declare i{w} @llvm.{kind}.i{w}(i{w}, i{w})

define i{w} @{kind}_offset_{index}(i{w} %x) {{
  %1 = add{flags} i{w} {_signed_const(rng, w)}, %x
  %m = call i{w} @llvm.{kind}.i{w}(i{w} %1, i{w} {_signed_const(rng, w)})
  ret i{w} %m
}}
"""


def archetype_shift_mask(rng: random.Random, index: int) -> str:
    """Rotates, byte swaps, and bitfield extracts (backend idiom food)."""
    w = rng.choice([16, 32, 64])
    c = rng.randrange(1, w)
    extract_shift = rng.randrange(0, w)
    if rng.random() < 0.4:
        # Bias toward the bitfield-extract width boundary (bug 55833's
        # off-by-one lives at shift + mask_bits == width - 1).
        bits = max(1, w - 1 - extract_shift)
    else:
        bits = rng.randrange(1, w)
    mask = (1 << bits) - 1
    return f"""
define i{w} @shifty_{index}(i{w} %x) {{
  %hi = shl i{w} %x, {c}
  %lo = lshr i{w} %x, {w - c}
  %rot = or i{w} %hi, %lo
  %ext = lshr i{w} %rot, {extract_shift}
  %r = and i{w} %ext, {mask}
  ret i{w} %r
}}
"""


def archetype_zext_mul_overflow(rng: random.Random, index: int) -> str:
    """Listing 17 flavor: the (zext a) * (zext b) overflow trap."""
    narrow = rng.choice([8, 16, 32])
    mid = narrow * 2 - rng.randrange(1, narrow)
    wide = narrow * 2
    bound = (1 << narrow) - 1
    return f"""
define i1 @pr4917_{index}(i{narrow} %x) {{
entry:
  %r = zext i{narrow} %x to i{wide}
  %0 = trunc i{wide} %r to i{mid}
  %new0 = mul i{mid} %0, %0
  %last = zext i{mid} %new0 to i{wide}
  %res = icmp ule i{wide} %last, {bound}
  ret i1 %res
}}
"""


def archetype_assume_align(rng: random.Random, index: int) -> str:
    """Listing 16 flavor: an assume with an align operand bundle."""
    w = rng.choice([8, 16, 32])
    align = rng.choice([4, 8, 16, 32, 64, 128])
    return f"""
declare void @llvm.assume(i1)

define i{w} @align_{index}(ptr %p) {{
  call void @llvm.assume(i1 true) [ "align"(ptr %p, i64 {align}) ]
  %v = load i{w}, ptr %p
  ret i{w} %v
}}
"""


def archetype_loop(rng: random.Random, index: int) -> str:
    w = rng.choice([8, 16, 32])
    step = rng.choice([1, 2, 3])
    return f"""
define i{w} @loop_{index}(i{w} %n) {{
entry:
  br label %header

header:
  %i = phi i{w} [ 0, %entry ], [ %next, %body ]
  %acc = phi i{w} [ 1, %entry ], [ %acc2, %body ]
  %cmp = icmp ult i{w} %i, %n
  br i1 %cmp, label %body, label %exit

body:
  %next = add nuw i{w} %i, {step}
  %acc2 = add i{w} %acc, %i
  br label %header

exit:
  ret i{w} %acc
}}
"""


def archetype_multi_function(rng: random.Random, index: int) -> str:
    """Several compatible helpers: fodder for the inlining mutation."""
    w = _width(rng)
    c = _signed_const(rng, w)
    return f"""
declare void @clobber(ptr)

define void @store_{index}(ptr %ptr) {{
  store i{w} {c}, ptr %ptr
  ret void
}}

define void @touch_{index}(ptr %ptr) {{
  %v = load i{w}, ptr %ptr
  %d = add i{w} %v, 1
  store i{w} %d, ptr %ptr
  ret void
}}

define i{w} @driver_{index}(ptr %p, ptr %q) {{
  %a = load i{w}, ptr %q
  call void @clobber(ptr %p)
  call void @store_{index}(ptr %p)
  %b = load i{w}, ptr %q
  %c = sub i{w} %a, %b
  ret i{w} %c
}}
"""


def archetype_saturating(rng: random.Random, index: int) -> str:
    w = _width(rng)
    kind = rng.choice(["usub.sat", "uadd.sat", "ssub.sat", "sadd.sat"])
    return f"""
declare i{w} @llvm.{kind}.i{w}(i{w}, i{w})

define i{w} @sat_{index}(i{w} %x, i{w} %y) {{
  %s = call i{w} @llvm.{kind}.i{w}(i{w} %x, i{w} %y)
  %r = add i{w} %s, {_signed_const(rng, w)}
  ret i{w} %r
}}
"""


def archetype_abs(rng: random.Random, index: int) -> str:
    w = _width(rng)
    poison_flag = rng.choice(["true", "false"])
    return f"""
declare i{w} @llvm.abs.i{w}(i{w}, i1)

define i{w} @abs_{index}(i{w} %x) {{
  %a = call i{w} @llvm.abs.i{w}(i{w} %x, i1 {poison_flag})
  %b = call i{w} @llvm.abs.i{w}(i{w} %a, i1 {poison_flag})
  ret i{w} %b
}}
"""


def archetype_freeze(rng: random.Random, index: int) -> str:
    """Frozen flagged arithmetic plus a frozen poison literal escaping
    through memory — both shapes LLVM's freeze regression tests use.
    The literal uses a tiny width so the validator can enumerate the
    freeze's choices exhaustively."""
    w = rng.choice([8, 16, 32])
    narrow = rng.choice([2, 3])
    flags = rng.choice([" nsw", " nuw", " nuw nsw"])
    return f"""
define i{w} @fr_{index}(i{w} %x, i{w} %y, ptr %q) {{
  %p = freeze i{narrow} poison
  store i{narrow} %p, ptr %q
  %a = add{flags} i{w} %x, %y
  %f = freeze i{w} %a
  %r = mul i{w} %f, {_signed_const(rng, w)}
  ret i{w} %r
}}
"""


def archetype_bool_lshr(rng: random.Random, index: int) -> str:
    """Listing 18 flavor: lshr of a zext'd i1."""
    w = rng.choice([16, 32, 64])
    return f"""
define i{w} @lsr_zext_{index}(i1 %b) {{
  %1 = zext i1 %b to i{w}
  %2 = lshr i{w} %1, {rng.randrange(1, 4)}
  ret i{w} %2
}}
"""


def archetype_constant_select(rng: random.Random, index: int) -> str:
    """Listing 19 flavor: constant arithmetic feeding a select."""
    w = rng.choice([8, 16, 32])
    return f"""
define i32 @f_{index}() {{
  %1 = sub i{w} {_signed_const(rng, w)}, 0
  %2 = icmp ugt i{w} {_signed_const(rng, w)}, %1
  %3 = select i1 %2, i32 1, i32 0
  ret i32 %3
}}
"""


def archetype_alloca(rng: random.Random, index: int) -> str:
    w = rng.choice([8, 16, 32])
    uninit = rng.random() < 0.3
    first = "" if uninit else f"  store i{w} {_const(rng, w)}, ptr %slot\n"
    return f"""
define i{w} @stack_{index}(i{w} %x) {{
  %slot = alloca i{w}
{first}  %v = load i{w}, ptr %slot
  %r = add i{w} %v, %x
  store i{w} %r, ptr %slot
  %out = load i{w}, ptr %slot
  ret i{w} %out
}}
"""


def archetype_printf(rng: random.Random, index: int) -> str:
    """A libfunc declaration with a wrong signature (TargetLibraryInfo)."""
    ret = rng.choice(["i64", "i32", "i8"])
    return f"""
declare {ret} @printf(ptr)

define {ret} @log_{index}(ptr %fmt, i32 %x) {{
  %r = call {ret} @printf(ptr %fmt)
  ret {ret} %r
}}
"""


def archetype_minmax_clamp(rng: random.Random, index: int) -> str:
    """select (icmp x, C), x, C — the canonicalizeClampLike shape."""
    w = _width(rng)
    c = _const(rng, w)
    pred = rng.choice(["ult", "ugt", "slt", "sgt"])
    order = rng.random() < 0.5
    arms = f"i{w} %x, i{w} {c}" if order else f"i{w} {c}, i{w} %x"
    return f"""
define i{w} @minclamp_{index}(i{w} %x) {{
  %c = icmp {pred} i{w} %x, {c}
  %r = select i1 %c, {arms}
  ret i{w} %r
}}
"""


def archetype_mask_shift(rng: random.Random, index: int) -> str:
    """The opposite-shifts-of-minus-one shape (bug 50693's neighborhood)."""
    w = _width(rng)
    return f"""
define i{w} @maskshift_{index}(i{w} %x, i{w} %n) {{
  %m = shl i{w} -1, %n
  %r = lshr i{w} %m, %n
  %k = and i{w} %r, %x
  ret i{w} %k
}}
"""


def archetype_double_shift(rng: random.Random, index: int) -> str:
    """shl-of-shl chains whose total may leave the type (bug 55003 food)."""
    w = _width(rng)
    c1 = rng.randrange(1, w)
    c2 = rng.randrange(1, w)
    return f"""
define i{w} @dshift_{index}(i{w} %x) {{
  %a = shl i{w} %x, {c1}
  %b = shl i{w} %a, {c2}
  %c = or i{w} %b, 1
  ret i{w} %c
}}
"""


def archetype_masked_rotate(rng: random.Random, index: int) -> str:
    """A disguised rotate whose shl operand carries a mask (bug 55201)."""
    w = rng.choice([16, 32, 64])
    c = rng.randrange(1, w)
    mask = _const(rng, w) | 1
    return f"""
define i{w} @mrot_{index}(i{w} %x) {{
  %t = and i{w} %x, {mask}
  %hi = shl i{w} %t, {c}
  %lo = lshr i{w} %x, {w - c}
  %r = or i{w} %hi, %lo
  ret i{w} %r
}}
"""


def archetype_bitfield_insert(rng: random.Random, index: int) -> str:
    """Complementary-mask or+and (the GlobalISel BFI shape, bug 55284)."""
    w = rng.choice([8, 16, 32])
    mask = _const(rng, w)
    inverse = ((1 << w) - 1) ^ mask
    return f"""
define i{w} @bfi_{index}(i{w} %x, i{w} %y) {{
  %lo = and i{w} %x, {mask}
  %hi = and i{w} %y, {inverse}
  %r = or i{w} %lo, %hi
  ret i{w} %r
}}
"""


def archetype_gvn_duplicates(rng: random.Random, index: int) -> str:
    """Identical computations differing only in poison flags (bug 53218).

    The flagged twin escapes through memory while the plain twin is the
    return value, so keeping the leader's stronger flags is observable.
    """
    w = _width(rng)
    op = rng.choice(["add", "sub", "mul"])
    flags = rng.choice(["nsw", "nuw", "nuw nsw"])
    return f"""
define i{w} @dup_{index}(i{w} %x, i{w} %y, ptr %p) {{
  %a = {op} {flags} i{w} %x, %y
  store i{w} %a, ptr %p
  %b = {op} i{w} %x, %y
  ret i{w} %b
}}
"""


def archetype_division(rng: random.Random, index: int) -> str:
    """Signed/unsigned division and remainder chains."""
    w = _width(rng)
    op1 = rng.choice(["sdiv", "udiv"])
    op2 = rng.choice(["srem", "urem"])
    c = max(2, _const(rng, w) or 2)
    return f"""
define i{w} @div_{index}(i{w} %a, i{w} %b) {{
  %q = {op1} i{w} %a, {c}
  %r = {op2} i{w} %q, %b
  ret i{w} %r
}}
"""


def archetype_funnel_shift(rng: random.Random, index: int) -> str:
    """Funnel shifts with a variable amount (VectorCombine food)."""
    w = rng.choice([8, 16, 32])
    kind = rng.choice(["fshl", "fshr"])
    return f"""
declare i{w} @llvm.{kind}.i{w}(i{w}, i{w}, i{w})

define i{w} @funnel_{index}(i{w} %x, i{w} %y, i{w} %z) {{
  %r = call i{w} @llvm.{kind}.i{w}(i{w} %x, i{w} %y, i{w} %z)
  ret i{w} %r
}}
"""


def archetype_punned_alloca(rng: random.Random, index: int) -> str:
    """A type-punned stack slot: stored wide, loaded narrow (SROA food)."""
    wide = rng.choice([16, 32, 64])
    narrow = rng.choice([8, 16])
    if narrow >= wide:
        narrow = 8
    return f"""
define i{narrow} @pun_{index}(i{wide} %x) {{
  %slot = alloca i{wide}
  store i{wide} %x, ptr %slot
  %v = load i{narrow}, ptr %slot
  ret i{narrow} %v
}}
"""


def archetype_abs_twice(rng: random.Random, index: int) -> str:
    """Two abs calls over the same value (expansion-CSE food, bug 58423)."""
    w = _width(rng)
    flag = rng.choice(["true", "false"])
    return f"""
declare i{w} @llvm.abs.i{w}(i{w}, i1)

define i{w} @abs2_{index}(i{w} %x) {{
  %a = call i{w} @llvm.abs.i{w}(i{w} %x, i1 {flag})
  %b = call i{w} @llvm.abs.i{w}(i{w} %x, i1 {flag})
  %r = add i{w} %a, %b
  ret i{w} %r
}}
"""


def archetype_odd_width(rng: random.Random, index: int) -> str:
    """Non-legal integer widths straight from the seed (promotion food)."""
    w = rng.choice([7, 13, 17, 26, 33])
    op = rng.choice(["sdiv", "srem", "udiv", "urem", "mul"])
    c = max(2, _const(rng, min(w, 16)))
    return f"""
define i{w} @odd_{index}(i{w} %a, i{w} %b) {{
  %x = {op} i{w} %a, {c}
  %y = add i{w} %x, %b
  ret i{w} %y
}}
"""


def archetype_loop_invariant(rng: random.Random, index: int) -> str:
    """Loops with hoistable invariants (LICM food)."""
    w = rng.choice([8, 16, 32])
    op = rng.choice(["mul", "xor", "and", "or"])
    return f"""
define i{w} @linv_{index}(i{w} %n, i{w} %k) {{
entry:
  br label %header

header:
  %i = phi i{w} [ 0, %entry ], [ %next, %body ]
  %acc = phi i{w} [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i{w} %i, %n
  br i1 %c, label %body, label %exit

body:
  %inv = {op} i{w} %k, {_const(rng, w)}
  %acc2 = add i{w} %acc, %inv
  %next = add nuw i{w} %i, 1
  br label %header

exit:
  ret i{w} %acc
}}
"""


def archetype_dead_stores(rng: random.Random, index: int) -> str:
    """Store chains with overwrites and an interleaved load (DSE food)."""
    w = rng.choice([8, 16, 32])
    return f"""
define i{w} @ds_{index}(ptr %p, i{w} %a, i{w} %b) {{
  store i{w} %a, ptr %p
  store i{w} {_const(rng, w)}, ptr %p
  %v = load i{w}, ptr %p
  store i{w} %b, ptr %p
  store i{w} %v, ptr %p
  %out = load i{w}, ptr %p
  ret i{w} %out
}}
"""


ARCHETYPES: Sequence[Tuple[str, Callable[[random.Random, int], str]]] = (
    ("clamp", archetype_clamp_select),
    ("arith", archetype_flagged_arithmetic),
    ("memory", archetype_memory_pingpong),
    ("minmax", archetype_minmax_offset),
    ("shift", archetype_shift_mask),
    ("zextmul", archetype_zext_mul_overflow),
    ("assume", archetype_assume_align),
    ("loop", archetype_loop),
    ("multi", archetype_multi_function),
    ("sat", archetype_saturating),
    ("abs", archetype_abs),
    ("freeze", archetype_freeze),
    ("boollshr", archetype_bool_lshr),
    ("constsel", archetype_constant_select),
    ("alloca", archetype_alloca),
    ("printf", archetype_printf),
    ("minclamp", archetype_minmax_clamp),
    ("maskshift", archetype_mask_shift),
    ("dshift", archetype_double_shift),
    ("mrot", archetype_masked_rotate),
    ("bfi", archetype_bitfield_insert),
    ("gvndup", archetype_gvn_duplicates),
    ("div", archetype_division),
    ("funnel", archetype_funnel_shift),
    ("pun", archetype_punned_alloca),
    ("abs2", archetype_abs_twice),
    ("oddwidth", archetype_odd_width),
    ("linv", archetype_loop_invariant),
    ("ds", archetype_dead_stores),
)


def generate_corpus(count: int, seed: int = 0) -> List[Tuple[str, str]]:
    """``count`` (filename, .ll text) pairs, deterministic in ``seed``.

    Archetypes are cycled so every corpus slice is diverse, mirroring the
    paper's "randomly selected 200 files" methodology.
    """
    rng = random.Random(seed)
    files: List[Tuple[str, str]] = []
    for index in range(count):
        name, generator = ARCHETYPES[index % len(ARCHETYPES)]
        text = generator(rng, index).lstrip("\n")
        files.append((f"{name}_{index}.ll", text))
    return files


def generate_large_corpus(count: int, seed: int = 0,
                          min_bytes: int = 2048) -> List[Tuple[str, str]]:
    """Files larger than ``min_bytes``, per the paper's appendix G:
    "we randomly selected 200 IR files with file size less than 2KB and
    200 files with size larger than 2KB".

    Each large file concatenates several archetype functions (renamed to
    stay unique) until it crosses the size threshold.
    """
    import re

    name_of = re.compile(r"declare\s+\S+\s+@([\w.]+)")
    rng = random.Random(seed ^ 0xB16)
    files: List[Tuple[str, str]] = []
    piece_counter = 0
    for index in range(count):
        parts: List[str] = []
        declared: dict = {}
        size = 0
        while size < min_bytes:
            _, generator = ARCHETYPES[rng.randrange(len(ARCHETYPES))]
            piece_counter += 1
            text = generator(rng, 100000 + piece_counter).lstrip("\n")
            # Keep one copy of each declaration; a piece re-declaring a
            # name with a *different* signature is discarded wholesale.
            body_lines = []
            conflict = False
            for line in text.splitlines():
                if line.startswith("declare"):
                    match = name_of.match(line)
                    declared_name = match.group(1) if match else line
                    existing = declared.get(declared_name)
                    if existing == line:
                        continue
                    if existing is not None:
                        conflict = True
                        break
                    declared[declared_name] = line
                body_lines.append(line)
            if conflict:
                continue
            piece = "\n".join(body_lines).strip() + "\n"
            parts.append(piece)
            size += len(piece.encode())
        files.append((f"large_{index}.ll", "\n".join(parts)))
    return files


def corpus_modules(count: int, seed: int = 0):
    """Parsed corpus: (filename, Module) pairs."""
    from ..ir import parse_module

    return [(name, parse_module(text, name))
            for name, text in generate_corpus(count, seed)]
