"""Bounded LRU caches for the memoized fuzzing loop (paper §III-B).

The driver keeps two of these: an *optimize* cache mapping
``(pre-optimization function fingerprint, pipeline)`` to an
:class:`OptimizeEntry` (the optimized body to splice plus the bugs and
crash the pipeline produced), and a *verify* cache mapping
``(source closure fingerprint, target closure fingerprint, tv key)`` to
the :class:`~repro.tv.refine.TVResult` verdict to replay.  Both are
plain bounded LRU maps — eviction only ever costs extra recomputation,
never a missed finding, because cached results are replayed verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from ..ir.function import Function
from ..opt import OptimizerCrash
from ..tv.compile import LRUCache

__all__ = ["LRUCache", "OptimizeEntry"]


@dataclass
class OptimizeEntry:
    """What running the pipeline over one function produced.

    ``function`` is the optimized body to splice into future modules
    (None when the pipeline crashed), kept alive by the cache itself;
    ``fingerprint`` is its post-optimization structural hash (reused so
    splices never re-hash); ``triggered_bugs`` must be replayed into the
    iteration's :class:`~repro.opt.context.OptContext` on every hit so
    cache hits never mask bug attribution; ``crash`` is replayed as if
    the pipeline had crashed again; ``stats`` holds the per-function
    optimizer counters the pipeline run produced, replayed on hits so
    coverage feedback (see :mod:`repro.fuzz.feedback`) is identical with
    memoization on or off.
    """

    function: Optional[Function]
    fingerprint: str
    triggered_bugs: FrozenSet[str]
    crash: Optional[OptimizerCrash]
    stats: Dict[str, int] = field(default_factory=dict)
