"""Bounded LRU caches for the memoized fuzzing loop (paper §III-B).

The driver keeps two of these: an *optimize* cache mapping
``(pre-optimization function fingerprint, pipeline)`` to an
:class:`OptimizeEntry` (the optimized body to splice plus the bugs and
crash the pipeline produced), and a *verify* cache mapping
``(source closure fingerprint, target closure fingerprint, tv key)`` to
the :class:`~repro.tv.refine.TVResult` verdict to replay.  Both are
plain bounded LRU maps — eviction only ever costs extra recomputation,
never a missed finding, because cached results are replayed verbatim.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, FrozenSet, Hashable, Optional

from ..ir.function import Function
from ..opt import OptimizerCrash

__all__ = ["LRUCache", "OptimizeEntry"]


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


@dataclass
class OptimizeEntry:
    """What running the pipeline over one function produced.

    ``function`` is the optimized body to splice into future modules
    (None when the pipeline crashed), kept alive by the cache itself;
    ``fingerprint`` is its post-optimization structural hash (reused so
    splices never re-hash); ``triggered_bugs`` must be replayed into the
    iteration's :class:`~repro.opt.context.OptContext` on every hit so
    cache hits never mask bug attribution; ``crash`` is replayed as if
    the pipeline had crashed again.
    """

    function: Optional[Function]
    fingerprint: str
    triggered_bugs: FrozenSet[str]
    crash: Optional[OptimizerCrash]
