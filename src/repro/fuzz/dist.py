"""Distributed campaigns: lease-based work distribution over a shared dir.

One coordinated campaign across many hosts, built from the pieces the
single-host runtime already guarantees: deterministic per-job seeds,
scheduling-invariant campaign fingerprints, associative metric merges,
and idempotent per-job results.  The transport is deliberately the
dumbest thing that can be made crash-safe — a shared directory (NFS,
bind mount, or plain local disk for same-host fleets) holding one small
JSON file per protocol step — so there is no broker to operate and no
state that lives anywhere but the filesystem.

Protocol
--------
The coordinator publishes the job matrix and a ``manifest.json`` naming
the campaign fingerprint; node runners then race over the jobs:

* **claim** — a node takes a job by *exclusively creating* its lease
  file (``os.link`` of a unique temp file, which fails atomically if a
  lease exists).  A lease is time-bounded: it names the node, the
  attempt number, and an expiry timestamp.
* **heartbeat** — the owning node periodically rewrites the lease
  (atomic ``os.replace``) with a fresh expiry.  A node that stops
  heartbeating — SIGKILL, kernel panic, unplugged cable — simply stops
  renewing, and the lease expires on its own.
* **reclaim** — any node (or the coordinator's sweep) that finds an
  expired lease may take the job over, bumping the attempt number and
  honoring the quarantine machinery's exponential backoff (plus the
  campaign's optional decorrelation jitter).  Node loss is therefore
  *the existing hang/retry path*: attempts are bounded, and a job whose
  every lease expired is retired as ``ShardFailure(kind="node_lost")``.
* **result** — a finished job's :class:`~repro.fuzz.parallel.ShardResult`
  is parked as a result file via exclusive create.  Jobs are
  *at-least-once*: a resurrected node may finish a job that was already
  reclaimed and re-run elsewhere, but results are keyed by (job index,
  campaign fingerprint) and only the first publish lands — duplicates
  are dropped deterministically, and since job execution is
  deterministic the dropped copy is bit-identical anyway.
* **tombstone** — a job retired without a usable result (attempts
  exhausted) gets a tombstone so nodes stop reclaiming it.

Every mutation is crash-safe: files are written to a unique temp name,
fsync'd, then atomically linked or renamed into place, so a SIGKILL at
any instant leaves either the old state or the new state, never a torn
protocol file.  Readers treat an unparsable lease as expired (the claim
protocol re-takes it) and an unparsable result as absent (the job
re-runs and the repaired result replaces the torn file).

Failure matrix
--------------
=====================  ====================================================
node killed mid-job    lease expires; job reclaimed with backoff; partial
                       node-local state discarded (jobs are atomic)
node killed            result already parked; coordinator collects it;
after publish          nothing re-runs
coordinator killed     nodes keep draining their leases and park results;
                       a restarted coordinator re-publishes the (identical)
                       manifest, collects parked results, and resumes
torn queue file        impossible via the protocol (atomic rename); if
                       injected anyway (chaos), damaged leases read as
                       expired and damaged results as absent
clock skew             leases are compared against the *reader's* clock;
                       skew shortens or stretches effective lease time but
                       never breaks exclusivity (claims are exclusive file
                       creation, not timestamp arbitration)
=====================  ====================================================
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import (Callable, Dict, List, Optional, Protocol, Sequence, Set,
                    Tuple)

from ..mutate import MutatorConfig
from ..obs import MetricsRegistry
from ..tv import RefinementConfig
from ..tv.interp import ExecutionLimits
from .campaign import CampaignReport, new_report
from .checkpoint import (CheckpointJournal, jobs_fingerprint, result_from_dict,
                         result_to_dict)
from .driver import FuzzConfig
from .feedback import FeedbackConfig
from .parallel import (KIND_NODE_LOST, JobRunner, ShardJob, ShardResult,
                       _SignalGuard, execute_job, retry_delay, run_jobs)
from .wire import (FORMAT_BITCODE, PAYLOAD_FORMATS, BlobStore, DecodeCache,
                   WireError, encode_payload)

__all__ = ["DistConfig", "NodeReport", "NodeRunner", "QueueError",
           "QueueMismatch", "Transport", "WorkQueue", "job_from_dict",
           "job_from_wire", "job_to_dict", "job_to_wire", "open_queue",
           "run_coordinator"]

MANIFEST_NAME = "manifest.json"
QUEUE_VERSION = 2
MERGED_CORPUS_NAME = "merged.corpus.jsonl"
BLOBS_DIR = "blobs"

#: Tombstone/terminal reasons.
REASON_NODE_LOST = KIND_NODE_LOST
REASON_QUARANTINE = "quarantine"


class QueueError(RuntimeError):
    """The work queue directory cannot be used (I/O or format problem)."""


class QueueMismatch(QueueError):
    """The queue directory belongs to a different campaign.

    Raised when a manifest's fingerprint disagrees with the campaign
    about to be published or joined: mixing two campaigns in one queue
    directory would merge findings across configurations.
    """


@dataclass
class DistConfig:
    """Coordinator-side knobs for a distributed campaign.

    Operational only — none of these affect what any job computes, so
    (like ``checkpoint_dir``) they are excluded from the campaign
    fingerprint and may differ between a run and its resume.
    """

    # The shared queue directory every node and the coordinator mount
    # (the filesystem transport; exclusive with queue_addr).
    queue_dir: str = ""
    # A ``host:port`` broker address (the socket transport — a
    # :class:`repro.fuzz.net.QueueBroker` someone is serving; exclusive
    # with queue_dir).
    queue_addr: str = ""
    # How module payloads travel: "bitcode" (the compact binary format,
    # content-addressed and decoded once per node) or "text" (printed
    # IR verbatim — the ablation/debug path).  Findings and
    # deterministic() metrics are identical either way.
    payload_format: str = FORMAT_BITCODE
    # Seconds a lease lives between heartbeats.  Short leases detect
    # node loss quickly but demand frequent heartbeats; the node
    # heartbeats every lease_duration / 3 by default.
    lease_duration: float = 30.0
    # Total attempts (initial + reclaims) before a job is retired.
    max_attempts: int = 3
    # Coordinator poll interval while waiting for results, seconds.
    poll_interval: float = 0.05
    # Coordinator wait cap, seconds (None = wait for every job; the
    # campaign's global_time_budget also applies if set).
    wait_timeout: Optional[float] = None

    def validate(self) -> "DistConfig":
        if not self.queue_dir and not self.queue_addr:
            raise ValueError("dist.queue_dir or dist.queue_addr is required")
        if self.queue_dir and self.queue_addr:
            raise ValueError("dist.queue_dir and dist.queue_addr are "
                             "exclusive: one campaign, one transport")
        if self.payload_format not in PAYLOAD_FORMATS:
            raise ValueError(f"dist.payload_format must be one of "
                             f"{PAYLOAD_FORMATS}, got "
                             f"{self.payload_format!r}")
        if self.lease_duration <= 0:
            raise ValueError("dist.lease_duration must be positive, "
                             f"got {self.lease_duration}")
        if self.max_attempts < 1:
            raise ValueError("dist.max_attempts must be >= 1, "
                             f"got {self.max_attempts}")
        if self.poll_interval <= 0:
            raise ValueError("dist.poll_interval must be positive, "
                             f"got {self.poll_interval}")
        if self.wait_timeout is not None and self.wait_timeout < 0:
            raise ValueError("dist.wait_timeout must be >= 0, "
                             f"got {self.wait_timeout}")
        return self


# ---------------------------------------------------------------------------
# ShardJob <-> JSON (the wire format of the jobs/ directory).
# ---------------------------------------------------------------------------


def job_to_dict(job: ShardJob) -> dict:
    """A self-contained JSON-safe dict for one :class:`ShardJob`.

    ``dataclasses.asdict`` flattens the nested config dataclasses; the
    result round-trips through :func:`job_from_dict` to a job whose
    :func:`~repro.fuzz.checkpoint.jobs_fingerprint` matches the
    original's, which is what lets a node verify it is running the
    campaign the manifest claims.  This full form is the
    checkpoint/debug representation; the queue itself ships the deduped
    :func:`job_to_wire` form (shared config in the manifest, module
    payload by content hash).
    """
    return asdict(job)


def config_from_dict(config: dict) -> FuzzConfig:
    """Rebuild a :class:`FuzzConfig` from its ``asdict`` flattening."""
    config = dict(config)
    mutator = dict(config.pop("mutator"))
    tv = dict(config.pop("tv"))
    limits = dict(tv.pop("limits"))
    feedback = dict(config.pop("feedback"))
    return FuzzConfig(
        mutator=MutatorConfig(**mutator),
        tv=RefinementConfig(limits=ExecutionLimits(**limits), **tv),
        feedback=FeedbackConfig(**feedback),
        **config)


def job_from_dict(data: dict) -> ShardJob:
    """Rehydrate a :class:`ShardJob` serialized by :func:`job_to_dict`."""
    return ShardJob(
        job_index=data["job_index"],
        file_name=data["file_name"],
        text=data["text"],
        config=config_from_dict(data["config"]),
        iterations=data.get("iterations"),
        time_budget=data.get("time_budget"),
        confirm_attributions=data.get("confirm_attributions", False),
        deadline=data.get("deadline"),
        trace_dir=data.get("trace_dir"),
        trace_sample=data.get("trace_sample", 1.0),
    )


def _jsonified(value):
    """``value`` normalized through a JSON round-trip (tuples -> lists),
    so configs hydrated from disk diff cleanly against fresh ones."""
    return json.loads(json.dumps(value, sort_keys=True, default=str))


def _dict_diff(full: dict, base: dict) -> dict:
    """The sparse nested overrides turning ``base`` into ``full``.

    Both sides are same-shape ``asdict`` flattenings of the same config
    dataclasses, so keys always align; only differing values (recursing
    into nested dicts) appear in the result.
    """
    overrides = {}
    for key, value in full.items():
        other = base.get(key)
        if isinstance(value, dict) and isinstance(other, dict):
            nested = _dict_diff(value, other)
            if nested:
                overrides[key] = nested
        elif value != other:
            overrides[key] = value
    return overrides


def _dict_merge(base: dict, overrides: dict) -> dict:
    """Apply :func:`_dict_diff` overrides to a deep copy of ``base``."""
    merged = dict(base)
    for key, value in overrides.items():
        other = merged.get(key)
        if isinstance(value, dict) and isinstance(other, dict):
            merged[key] = _dict_merge(other, value)
        else:
            merged[key] = value
    return merged


def job_to_wire(job: ShardJob, shared_config: dict,
                payload_sha: str, payload_format: str) -> dict:
    """The deduped queue record for one job.

    The shared :class:`FuzzConfig` lives once in the manifest
    (``shared_config``); each job carries only its sparse config
    overrides (seeds, pipeline) and references its module payload by
    content hash — so a re-published retry job whose state is unchanged
    re-serializes nothing.
    """
    full = _jsonified(asdict(job.config))
    return {
        "job_index": job.job_index,
        "file_name": job.file_name,
        "payload": {"sha": payload_sha, "format": payload_format},
        "config": _dict_diff(full, shared_config),
        "iterations": job.iterations,
        "time_budget": job.time_budget,
        "confirm_attributions": job.confirm_attributions,
        "deadline": job.deadline,
        "trace_dir": job.trace_dir,
        "trace_sample": job.trace_sample,
    }


def job_from_wire(record: dict, shared_config: dict,
                  text: str) -> ShardJob:
    """Rehydrate a job from its deduped record + resolved module text."""
    config = _dict_merge(shared_config, record.get("config", {}))
    return ShardJob(
        job_index=record["job_index"],
        file_name=record["file_name"],
        text=text,
        config=config_from_dict(config),
        iterations=record.get("iterations"),
        time_budget=record.get("time_budget"),
        confirm_attributions=record.get("confirm_attributions", False),
        deadline=record.get("deadline"),
        trace_dir=record.get("trace_dir"),
        trace_sample=record.get("trace_sample", 1.0),
    )


# ---------------------------------------------------------------------------
# The transport protocol.
# ---------------------------------------------------------------------------


class Transport(Protocol):
    """The queue verbs :func:`run_coordinator` and :class:`NodeRunner` use.

    Extracted from :class:`WorkQueue` so the runtime is
    transport-agnostic: the shared-dir queue and the socket queue
    (:class:`repro.fuzz.net.SocketQueue`) implement the same surface,
    and everything above this line — claims, heartbeats, retries,
    result dedup, corpus merging — behaves identically over both.
    """

    node: str
    metrics: MetricsRegistry

    def manifest(self) -> Optional[dict]: ...

    def publish(self, jobs: Sequence[ShardJob], fingerprint: str,
                total_jobs: Optional[int] = None,
                lease_duration: float = 30.0, max_attempts: int = 3,
                retry_backoff: float = 0.25,
                retry_jitter: float = 0.0) -> None: ...

    def claim_next(self, limit: int = 1) -> List[Tuple[ShardJob,
                                                       "Lease"]]: ...

    def heartbeat(self, job_index: int, lease_duration: float) -> bool: ...

    def release_for_retry(self, job_index: int, lease: "Lease",
                          failure_kind: str, error: str) -> None: ...

    def publish_result(self, result: ShardResult, fingerprint: str,
                       attempt: int = 1) -> bool: ...

    def publish_corpus(self, job_index: int, journal_path: str) -> bool: ...

    def corpus_paths(self) -> List[Tuple[int, str]]: ...

    def collect_results(self, fingerprint: str) -> Dict[int,
                                                        ShardResult]: ...

    def collect_tombstones(self) -> Dict[int, dict]: ...

    def sweep(self) -> int: ...

    def drained(self) -> bool: ...

    def close(self) -> None: ...


# ---------------------------------------------------------------------------
# The filesystem-backed work queue.
# ---------------------------------------------------------------------------


@dataclass
class Lease:
    """One lease record as stored in ``leases/job-<index>.json``."""

    node: str
    attempt: int
    claimed_at: float
    expires_at: float
    # A node that watched its own job hang/crash *releases* the lease
    # (expiry now, failure recorded) instead of silently vanishing, so
    # the reclaim path can tell a retryable failure from node loss.
    released: bool = False
    failure_kind: str = ""
    error: str = ""

    def to_dict(self) -> dict:
        return {"kind": "lease", **asdict(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        return cls(node=data["node"], attempt=int(data["attempt"]),
                   claimed_at=float(data["claimed_at"]),
                   expires_at=float(data["expires_at"]),
                   released=bool(data.get("released", False)),
                   failure_kind=data.get("failure_kind", ""),
                   error=data.get("error", ""))


class WorkQueue:
    """Crash-safe lease/result protocol over one shared directory.

    Every instance (coordinator or node) talks to the same directory;
    there is no in-memory state another process could need.  All
    mutations go through :meth:`_write_atomic` (write temp + fsync +
    ``os.replace``) or :meth:`_create_exclusive` (write temp + fsync +
    ``os.link``), so a SIGKILL at any instant leaves a recoverable
    state.  ``clock`` is injectable for chaos tests (clock skew) and
    deterministic simulations.
    """

    def __init__(self, directory: str, node: str = "",
                 clock: Callable[[], float] = time.time,
                 payload_format: str = FORMAT_BITCODE) -> None:
        self.directory = directory
        self.node = node or f"node-{os.getpid()}"
        self.clock = clock
        self.payload_format = payload_format
        self.metrics = MetricsRegistry()
        self.blobs = BlobStore(os.path.join(directory, BLOBS_DIR),
                               metrics=self.metrics)
        self.decode_cache = DecodeCache(metrics=self.metrics)
        self._tmp_serial = 0
        self._job_cache: Dict[int, ShardJob] = {}
        self._manifest_cache: Optional[dict] = None

    # -- paths --------------------------------------------------------------

    def _dir(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def job_path(self, job_index: int) -> str:
        return os.path.join(self._dir("jobs"), f"job-{job_index:06d}.json")

    def lease_path(self, job_index: int) -> str:
        return os.path.join(self._dir("leases"), f"job-{job_index:06d}.json")

    def result_path(self, job_index: int) -> str:
        return os.path.join(self._dir("results"), f"job-{job_index:06d}.json")

    def tombstone_path(self, job_index: int) -> str:
        return os.path.join(self._dir("tombstones"),
                            f"job-{job_index:06d}.json")

    def corpus_path(self, job_index: int) -> str:
        return os.path.join(self._dir("corpus"),
                            f"job-{job_index:06d}.corpus.jsonl")

    # -- atomic file primitives --------------------------------------------

    def _tmp_path(self, final_path: str) -> str:
        self._tmp_serial += 1
        directory, base = os.path.split(final_path)
        return os.path.join(directory, f".{base}.{self.node}."
                                       f"{os.getpid()}.{self._tmp_serial}.tmp")

    def _write_payload(self, tmp: str, payload: dict) -> None:
        with open(tmp, "w") as stream:
            stream.write(json.dumps(payload, sort_keys=True) + "\n")
            stream.flush()
            os.fsync(stream.fileno())

    def _write_atomic(self, path: str, payload: dict) -> None:
        """Last-writer-wins atomic replace (heartbeats, reclaims)."""
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = self._tmp_path(path)
        self._write_payload(tmp, payload)
        os.replace(tmp, path)

    def _create_exclusive(self, path: str, payload: dict) -> bool:
        """First-writer-wins atomic create (claims, results, tombstones).

        Returns False if ``path`` already exists — the caller lost the
        race (or is a duplicate publisher) and must not assume
        ownership.
        """
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = self._tmp_path(path)
        self._write_payload(tmp, payload)
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)

    def _read_json(self, path: str) -> Optional[dict]:
        """Parse one protocol file; None if absent *or damaged*.

        Damage (torn writes injected by chaos, or a reader racing a
        non-atomic writer on an exotic filesystem) is indistinguishable
        from absence by design: a damaged lease is reclaimable, a
        damaged result re-runs.
        """
        try:
            with open(path, "rb") as stream:
                raw = stream.read()
        except OSError:
            return None
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self.metrics.count("dist.files.damaged")
            return None
        return data if isinstance(data, dict) else None

    # -- coordinator: publish ----------------------------------------------

    def publish(self, jobs: Sequence[ShardJob], fingerprint: str,
                total_jobs: Optional[int] = None,
                lease_duration: float = 30.0, max_attempts: int = 3,
                retry_backoff: float = 0.25,
                retry_jitter: float = 0.0) -> None:
        """Publish ``jobs`` and the campaign manifest.

        Job files land first, the manifest last (atomically), so nodes
        never observe a campaign whose jobs are still being written.  A
        coordinator killed mid-publish leaves no manifest (or the old,
        identical one); re-running ``publish`` is idempotent.  An
        existing manifest with a different fingerprint raises
        :class:`QueueMismatch` — one queue directory serves one
        campaign.
        """
        existing = self._read_json(self.manifest_path())
        if existing is not None \
                and existing.get("fingerprint") != fingerprint:
            raise QueueMismatch(
                f"{self.directory} already serves campaign "
                f"{existing.get('fingerprint', '?')[:12]}, not "
                f"{fingerprint[:12]}; use a fresh queue directory")
        # The config-diff base: once a manifest exists its shared config
        # is authoritative (a resume's re-publish may cover a different
        # job subset, and the already-published records diff against the
        # original base); a fresh campaign derives it from the first job.
        shared_config = None
        if existing is not None:
            shared_config = existing.get("shared_config")
        if shared_config is None and jobs:
            shared_config = _jsonified(asdict(jobs[0].config))
        for job in jobs:
            payload, actual_format = encode_payload(
                job.text, self.payload_format, metrics=self.metrics)
            sha = self.blobs.put(payload)
            record = {
                "kind": "job",
                "fingerprint": fingerprint,
                "job": job_to_wire(job, shared_config, sha, actual_format),
            }
            current = self._read_json(self.job_path(job.job_index))
            if current == record:
                # Re-published retry job with unchanged state: the blob
                # is content-addressed and the record identical, so
                # nothing is re-serialized.
                self.metrics.count("dist.jobs.unchanged")
                continue
            self._write_atomic(self.job_path(job.job_index), record)
            self.metrics.count("dist.jobs.published")
        self._write_atomic(self.manifest_path(), {
            "kind": "manifest",
            "version": QUEUE_VERSION,
            "fingerprint": fingerprint,
            "total_jobs": (total_jobs if total_jobs is not None
                           else len(jobs)),
            "lease_duration": lease_duration,
            "max_attempts": max_attempts,
            "retry_backoff": retry_backoff,
            "retry_jitter": retry_jitter,
            "shared_config": shared_config,
        })
        self._manifest_cache = None

    def manifest(self) -> Optional[dict]:
        """The campaign manifest, or None until a coordinator publishes."""
        if self._manifest_cache is not None:
            return self._manifest_cache
        data = self._read_json(self.manifest_path())
        if data is not None and data.get("kind") != "manifest":
            return None
        if data is not None:
            # Manifests are immutable once published (same fingerprint,
            # same content), so one read serves the whole session.
            self._manifest_cache = data
        return data

    # -- nodes: jobs and claims --------------------------------------------

    def published_indexes(self) -> List[int]:
        """Every published job index, sorted."""
        try:
            names = os.listdir(self._dir("jobs"))
        except OSError:
            return []
        indexes = []
        for name in names:
            if name.startswith("job-") and name.endswith(".json"):
                try:
                    indexes.append(int(name[4:-5]))
                except ValueError:
                    continue
        return sorted(indexes)

    def load_job(self, job_index: int) -> Optional[ShardJob]:
        cached = self._job_cache.get(job_index)
        if cached is not None:
            return cached
        data = self._read_json(self.job_path(job_index))
        if data is None or data.get("kind") != "job":
            return None
        record = data.get("job")
        if not isinstance(record, dict):
            return None
        try:
            if "text" in record:
                # Legacy self-contained record (queue version 1): full
                # config and inline text; still loadable so old queue
                # directories drain cleanly.
                job = job_from_dict(record)
            else:
                job = self._job_from_record(record)
        except (KeyError, TypeError, ValueError, WireError):
            return None
        if job is None:
            return None
        self._job_cache[job_index] = job
        return job

    def _job_from_record(self, record: dict) -> Optional[ShardJob]:
        """Resolve a deduped record: manifest config + blob payload."""
        manifest = self.manifest()
        if manifest is None:
            return None
        shared_config = manifest.get("shared_config")
        if not isinstance(shared_config, dict):
            return None
        payload = record.get("payload", {})
        sha = payload.get("sha", "")
        data = self.blobs.get(sha)
        if data is None:
            return None
        text = self.decode_cache.text(sha, data,
                                      payload.get("format", "text"))
        return job_from_wire(record, shared_config, text)

    def read_lease(self, job_index: int) -> Optional[Lease]:
        data = self._read_json(self.lease_path(job_index))
        if data is None or data.get("kind") != "lease":
            return None
        try:
            return Lease.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def has_result(self, job_index: int) -> bool:
        return self._read_json(self.result_path(job_index)) is not None

    def has_tombstone(self, job_index: int) -> bool:
        return self._read_json(self.tombstone_path(job_index)) is not None

    def settled(self, job_index: int) -> bool:
        """True once the job has a (readable) result or tombstone."""
        return self.has_result(job_index) or self.has_tombstone(job_index)

    def drained(self) -> bool:
        """True when every published job is settled."""
        return all(self.settled(index) for index in self.published_indexes())

    def claim(self, job_index: int,
              manifest: Optional[dict] = None) -> Optional[Tuple[ShardJob,
                                                                 Lease]]:
        """Try to take one job; None if it is settled, leased, or backing
        off.

        Fresh jobs are claimed by exclusive lease creation; expired (or
        damaged, or released-for-retry) leases are reclaimed by atomic
        replace followed by a read-back ownership check — two nodes may
        race the replace, but exactly one sees itself as the owner
        afterwards, and even a double-run is safe (results dedup).
        Reclaims honor the campaign's retry backoff + jitter and retire
        the job with a tombstone once ``max_attempts`` is exhausted.
        """
        manifest = manifest or self.manifest()
        if manifest is None:
            return None
        if self.settled(job_index):
            return None
        job = self.load_job(job_index)
        if job is None:
            return None
        now = self.clock()
        duration = float(manifest.get("lease_duration", 30.0))
        previous = self.read_lease(job_index)
        if previous is None:
            attempt = 1
            if os.path.exists(self.lease_path(job_index)):
                # Damaged lease file: crash-consistency says treat it as
                # expired with unknown history; replace it outright.
                lease = Lease(node=self.node, attempt=attempt,
                              claimed_at=now, expires_at=now + duration)
                self._write_atomic(self.lease_path(job_index),
                                   lease.to_dict())
                self.metrics.count("dist.lease.reclaims")
            else:
                lease = Lease(node=self.node, attempt=attempt,
                              claimed_at=now, expires_at=now + duration)
                if not self._create_exclusive(self.lease_path(job_index),
                                              lease.to_dict()):
                    return None  # lost the race
                self.metrics.count("dist.lease.claims")
        else:
            if previous.expires_at > now and not previous.released:
                return None  # live lease
            if previous.attempt >= int(manifest.get("max_attempts", 3)):
                self.retire(job_index, previous)
                return None
            backoff = retry_delay(
                float(manifest.get("retry_backoff", 0.25)),
                previous.attempt,
                float(manifest.get("retry_jitter", 0.0)),
                manifest.get("fingerprint", ""), job_index)
            if now < previous.expires_at + backoff:
                return None  # still backing off
            attempt = previous.attempt + 1
            lease = Lease(node=self.node, attempt=attempt,
                          claimed_at=now, expires_at=now + duration)
            self._write_atomic(self.lease_path(job_index), lease.to_dict())
            self.metrics.count("dist.lease.reclaims")
            # Read-back ownership check: if another node replaced after
            # us, it owns the job now (at most one of the racers sees
            # its own write).
            current = self.read_lease(job_index)
            if current is None or current.node != self.node \
                    or current.claimed_at != lease.claimed_at:
                return None
        return job, lease

    def claim_next(self, limit: int = 1) -> List[Tuple[ShardJob, Lease]]:
        """Claim up to ``limit`` runnable jobs, lowest index first."""
        manifest = self.manifest()
        if manifest is None:
            return []
        claimed: List[Tuple[ShardJob, Lease]] = []
        for index in self.published_indexes():
            if len(claimed) >= limit:
                break
            taken = self.claim(index, manifest)
            if taken is not None:
                claimed.append(taken)
        return claimed

    def heartbeat(self, job_index: int, lease_duration: float) -> bool:
        """Renew this node's lease; False if the lease was lost.

        A lost heartbeat means the lease expired (e.g. a long GC pause
        or clock skew) and someone else reclaimed the job.  The caller
        may keep running — the duplicate result will be dropped — but
        should stop renewing.
        """
        current = self.read_lease(job_index)
        if current is None or current.node != self.node:
            self.metrics.count("dist.lease.lost")
            return False
        now = self.clock()
        renewed = Lease(node=self.node, attempt=current.attempt,
                        claimed_at=current.claimed_at,
                        expires_at=now + lease_duration)
        self._write_atomic(self.lease_path(job_index), renewed.to_dict())
        self.metrics.count("dist.heartbeats")
        return True

    def release_for_retry(self, job_index: int, lease: Lease,
                          failure_kind: str, error: str) -> None:
        """Give a hang/crash job back to the queue for reclaim-with-backoff.

        The lease stays on disk as the attempt record, expired as of
        now, with the failure recorded — the next claim bumps the
        attempt and (once attempts are exhausted) the failure kind
        decides between a ``quarantine`` and a ``node_lost`` retirement.
        """
        released = Lease(node=self.node, attempt=lease.attempt,
                         claimed_at=lease.claimed_at,
                         expires_at=self.clock(), released=True,
                         failure_kind=failure_kind, error=error)
        self._write_atomic(self.lease_path(job_index), released.to_dict())
        self.metrics.count("dist.lease.released")

    def retire(self, job_index: int, lease: Lease) -> bool:
        """Tombstone a job whose attempts are exhausted.

        ``released`` leases retire as ``quarantine`` (the node watched
        the job hang or crash and said so); silently expired leases
        retire as ``node_lost`` (the node vanished mid-lease).
        """
        reason = REASON_QUARANTINE if lease.released else REASON_NODE_LOST
        error = lease.error or (f"lease of node {lease.node!r} expired "
                                f"(attempt {lease.attempt})")
        created = self._create_exclusive(self.tombstone_path(job_index), {
            "kind": "tombstone",
            "reason": reason,
            "attempts": lease.attempt,
            "node": lease.node,
            "failure_kind": lease.failure_kind or reason,
            "error": error,
        })
        if created:
            self.metrics.count("dist.tombstones")
        return created

    # -- nodes: publishing results -----------------------------------------

    def publish_result(self, result: ShardResult, fingerprint: str,
                       attempt: int = 1) -> bool:
        """Park one terminal shard result; False if it was a duplicate.

        First-writer-wins (exclusive create).  A torn result file left
        by chaos injection parses as absent, so the retry's publish
        *repairs* it via atomic replace instead of dropping the good
        copy.
        """
        payload = {
            "kind": "result",
            "fingerprint": fingerprint,
            "node": self.node,
            "attempt": attempt,
            "result": result_to_dict(result),
        }
        path = self.result_path(result.job_index)
        if self._create_exclusive(path, payload):
            self.metrics.count("dist.results.published")
            self._drop_lease(result.job_index)
            return True
        if self._read_json(path) is None:
            # Existing file is torn/unreadable: repair it.
            self._write_atomic(path, payload)
            self.metrics.count("dist.results.repaired")
            self._drop_lease(result.job_index)
            return True
        self.metrics.count("dist.results.duplicate")
        return False

    def publish_corpus(self, job_index: int, journal_path: str) -> bool:
        """Park a job's corpus-journal delta next to its result."""
        path = self.corpus_path(job_index)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = self._tmp_path(path)
        try:
            shutil.copyfile(journal_path, tmp)
        except OSError:
            return False
        with open(tmp, "rb") as stream:
            os.fsync(stream.fileno())
        os.replace(tmp, path)
        self.metrics.count("dist.corpus.published")
        return True

    def corpus_paths(self) -> List[Tuple[int, str]]:
        """Published corpus deltas as (job index, path), index-sorted."""
        try:
            names = os.listdir(self._dir("corpus"))
        except OSError:
            return []
        deltas = []
        for name in names:
            if name.startswith("job-") and name.endswith(".corpus.jsonl"):
                try:
                    index = int(name[4:-len(".corpus.jsonl")])
                except ValueError:
                    continue
                deltas.append((index, os.path.join(self._dir("corpus"),
                                                   name)))
        return sorted(deltas)

    def _drop_lease(self, job_index: int) -> None:
        try:
            os.unlink(self.lease_path(job_index))
        except OSError:
            pass

    # -- coordinator: collection and sweeping ------------------------------

    def collect_results(self, fingerprint: str) -> Dict[int, ShardResult]:
        """Every parked result of *this* campaign, keyed by job index.

        Results carrying a foreign fingerprint (a resurrected node from
        an older campaign that somehow shares the directory) are
        dropped; damaged files read as absent and the job re-runs.
        """
        results: Dict[int, ShardResult] = {}
        try:
            names = sorted(os.listdir(self._dir("results")))
        except OSError:
            return results
        for name in names:
            if not (name.startswith("job-") and name.endswith(".json")):
                continue
            data = self._read_json(os.path.join(self._dir("results"), name))
            if data is None or data.get("kind") != "result":
                continue
            if data.get("fingerprint") != fingerprint:
                self.metrics.count("dist.results.foreign")
                continue
            try:
                result = result_from_dict(data["result"])
            except (KeyError, TypeError):
                continue
            results[result.job_index] = result
        return results

    def collect_tombstones(self) -> Dict[int, dict]:
        stones: Dict[int, dict] = {}
        try:
            names = sorted(os.listdir(self._dir("tombstones")))
        except OSError:
            return stones
        for name in names:
            if not (name.startswith("job-") and name.endswith(".json")):
                continue
            data = self._read_json(os.path.join(self._dir("tombstones"),
                                                name))
            if data is None or data.get("kind") != "tombstone":
                continue
            try:
                stones[int(name[4:-5])] = data
            except ValueError:
                continue
        return stones

    def sweep(self) -> int:
        """Retire jobs whose attempts are exhausted; count lost leases.

        Nodes normally do the reclaiming themselves, but if the whole
        fleet died the coordinator's sweep is what turns the silence
        into ``node_lost`` tombstones instead of an eternal wait.
        Returns how many jobs were newly retired.
        """
        manifest = self.manifest()
        if manifest is None:
            return 0
        now = self.clock()
        max_attempts = int(manifest.get("max_attempts", 3))
        retired = 0
        for index in self.published_indexes():
            if self.settled(index):
                continue
            lease = self.read_lease(index)
            if lease is None:
                continue
            if lease.expires_at > now and not lease.released:
                continue
            if not lease.released:
                self.metrics.count("dist.lease.expired")
            if lease.attempt >= max_attempts:
                if self.retire(index, lease):
                    retired += 1
                    if not lease.released:
                        self.metrics.count("dist.node_lost")
        return retired

    def close(self) -> None:
        """Release transport resources (none: the directory is the state)."""


def open_queue(dist: DistConfig, node: str = "") -> "Transport":
    """The transport a :class:`DistConfig` names.

    ``queue_dir`` opens the shared-directory :class:`WorkQueue`;
    ``queue_addr`` connects a :class:`repro.fuzz.net.SocketQueue` to a
    running broker.  Everything above the :class:`Transport` surface is
    identical over both.
    """
    if dist.queue_addr:
        from .net import SocketQueue
        return SocketQueue(dist.queue_addr, node=node,
                           payload_format=dist.payload_format)
    return WorkQueue(dist.queue_dir, node=node,
                     payload_format=dist.payload_format)


# ---------------------------------------------------------------------------
# The node runner.
# ---------------------------------------------------------------------------


@dataclass
class NodeReport:
    """What one node did with its share of the queue."""

    node: str
    jobs_run: int = 0
    published: int = 0
    duplicates: int = 0
    released: int = 0
    elapsed: float = 0.0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


class NodeRunner:
    """Pull jobs from a :class:`Transport` and run them to completion.

    Claimed jobs run through the existing execution stack —
    :func:`repro.fuzz.parallel.run_jobs` in isolated (process-per-job)
    mode whenever a deadline is present, so the hard watchdog and crash
    containment of single-host campaigns apply unchanged on a node.  A
    heartbeat thread renews every active lease at
    ``lease_duration / 3``; if the node is SIGKILLed the thread dies
    with it and the leases expire on their own, which *is* the
    node-loss protocol.

    Hang/crash results are not published: the lease is released for
    retry instead, so the queue-level backoff/quarantine machinery —
    not the node — decides the job's fate.  Deterministic in-job errors
    (a raising job, a parse failure) are terminal and publish normally,
    matching single-host semantics where only hangs and crashes retry.
    """

    def __init__(self, queue: "Transport", workers: int = 1,
                 runner: JobRunner = execute_job,
                 poll_interval: float = 0.05,
                 work_dir: Optional[str] = None) -> None:
        self.queue = queue
        self.workers = max(1, workers)
        self.runner = runner
        self.poll_interval = poll_interval
        self.work_dir = work_dir
        self.report = NodeReport(node=queue.node, metrics=queue.metrics)
        self._active: Dict[int, Lease] = {}
        self._active_lock = threading.Lock()
        self._hb_stop = threading.Event()

    # -- the heartbeat thread ----------------------------------------------

    def _heartbeat_loop(self, lease_duration: float) -> None:
        interval = max(0.01, lease_duration / 3.0)
        while not self._hb_stop.wait(interval):
            with self._active_lock:
                active = list(self._active)
            for job_index in active:
                if not self.queue.heartbeat(job_index, lease_duration):
                    # Lease lost (expired + reclaimed elsewhere): stop
                    # renewing; the in-flight run still publishes and
                    # dedups.
                    with self._active_lock:
                        self._active.pop(job_index, None)

    # -- running ------------------------------------------------------------

    def run(self, time_budget: Optional[float] = None,
            max_jobs: Optional[int] = None,
            should_stop: Optional[Callable[[], bool]] = None,
            wait_for_manifest: Optional[float] = None) -> NodeReport:
        """Drain the queue: claim, run, publish, until nothing is left.

        Exits when every published job is settled (or ``time_budget``
        / ``max_jobs`` / ``should_stop`` says so).  With
        ``wait_for_manifest`` the node waits up to that many seconds
        for a coordinator to publish before giving up.
        """
        started = time.monotonic()

        def out_of_time() -> bool:
            if time_budget is not None \
                    and time.monotonic() - started >= time_budget:
                return True
            return should_stop is not None and should_stop()

        manifest = self.queue.manifest()
        while manifest is None:
            if out_of_time() or wait_for_manifest is None \
                    or time.monotonic() - started >= wait_for_manifest:
                self.report.elapsed = time.monotonic() - started
                return self.report
            time.sleep(self.poll_interval)
            manifest = self.queue.manifest()
        lease_duration = float(manifest.get("lease_duration", 30.0))
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     args=(lease_duration,), daemon=True)
        heartbeat.start()
        try:
            while not out_of_time():
                if max_jobs is not None \
                        and self.report.jobs_run >= max_jobs:
                    break
                claimed = self.queue.claim_next(limit=self.workers)
                if not claimed:
                    if self.queue.drained():
                        break
                    time.sleep(self.poll_interval)
                    continue
                self._run_batch(claimed, manifest)
        finally:
            self._hb_stop.set()
            heartbeat.join()
        self.report.elapsed = time.monotonic() - started
        return self.report

    def run_once(self) -> Optional[int]:
        """Claim and run at most one job (test/chaos hook).

        Returns the settled job's index, or None if nothing was
        claimable.
        """
        manifest = self.queue.manifest()
        if manifest is None:
            return None
        claimed = self.queue.claim_next(limit=1)
        if not claimed:
            return None
        self._run_batch(claimed, manifest)
        return claimed[0][0].job_index

    def _run_batch(self, claimed: Sequence[Tuple[ShardJob, Lease]],
                   manifest: dict) -> None:
        fingerprint = manifest.get("fingerprint", "")
        leases = {job.job_index: lease for job, lease in claimed}
        jobs = [self._localize(job) for job, _lease in claimed]
        with self._active_lock:
            self._active.update(leases)
        isolate = any(job.deadline is not None for job in jobs)

        def publish(result: ShardResult) -> None:
            with self._active_lock:
                self._active.pop(result.job_index, None)
            self.report.jobs_run += 1
            lease = leases[result.job_index]
            result.worker = f"{self.queue.node}/{result.worker}" \
                if result.worker else self.queue.node
            result.attempts = lease.attempt
            if result.failure_kind in ("hang", "crash"):
                self.queue.release_for_retry(
                    result.job_index, lease, result.failure_kind,
                    result.error)
                self.report.released += 1
                return
            self._publish_corpus(result.job_index)
            if self.queue.publish_result(result, fingerprint,
                                         attempt=lease.attempt):
                self.report.published += 1
            else:
                self.report.duplicates += 1

        try:
            run_jobs(jobs, workers=self.workers, runner=self.runner,
                     on_result=publish, isolate=isolate)
        finally:
            with self._active_lock:
                for job_index in leases:
                    self._active.pop(job_index, None)

    # -- node-local paths ---------------------------------------------------

    def _localize(self, job: ShardJob) -> ShardJob:
        """Point a job's corpus journal at node-local scratch space.

        The coordinator's ``feedback.corpus_dir`` (if any) names a path
        on *its* filesystem; on the node the journal is written to a
        private per-job directory and *published* into the queue after
        the job completes — the shared dir sees only whole, settled
        deltas.  ``corpus_dir`` is excluded from the campaign
        fingerprint, so the rewrite does not change the job's identity.
        """
        if not job.config.feedback.enabled:
            return job
        from dataclasses import replace
        work_dir = self.work_dir or os.path.join(
            tempfile.gettempdir(), f"repro-dist-{self.queue.node}")
        job_dir = os.path.join(work_dir, f"job-{job.job_index:06d}")
        os.makedirs(job_dir, exist_ok=True)
        feedback = replace(job.config.feedback, corpus_dir=job_dir)
        return replace(job, config=replace(job.config, feedback=feedback))

    def _publish_corpus(self, job_index: int) -> None:
        work_dir = self.work_dir or os.path.join(
            tempfile.gettempdir(), f"repro-dist-{self.queue.node}")
        job_dir = os.path.join(work_dir, f"job-{job_index:06d}")
        try:
            names = sorted(os.listdir(job_dir))
        except OSError:
            return
        for name in names:
            if name.endswith(".corpus.jsonl"):
                self.queue.publish_corpus(job_index,
                                          os.path.join(job_dir, name))
                return


# ---------------------------------------------------------------------------
# The coordinator.
# ---------------------------------------------------------------------------


def synthesize_tombstone_result(job: ShardJob, stone: dict) -> ShardResult:
    """A terminal :class:`ShardResult` for a tombstoned job.

    ``node_lost`` retirements surface as
    ``ShardFailure(kind="node_lost")`` in the merged report; released
    hang/crash retirements ride the existing quarantine path.
    """
    reason = stone.get("reason", REASON_NODE_LOST)
    kind = REASON_QUARANTINE if reason == REASON_QUARANTINE \
        else KIND_NODE_LOST
    return ShardResult(
        job_index=job.job_index, file_name=job.file_name,
        pipeline=job.config.pipeline, seed=job.config.base_seed,
        error=stone.get("error", "job retired"),
        failure_kind=kind,
        attempts=int(stone.get("attempts", 1)))


def merge_corpus_journals(queue: "Transport", out_path: str,
                          max_size: int = 4096) -> int:
    """Merge every published corpus delta into one campaign journal.

    This closes the cross-job corpus sharing loop: per-job corpora are
    admitted in job-index order (deterministic regardless of which node
    produced which delta) into one campaign-level corpus via
    :func:`repro.fuzz.corpus.merge_journals`, and the merged journal
    can seed the next campaign via ``Corpus.load``.  Returns the number
    of entries in the merged corpus.
    """
    from .corpus import merge_journals
    deltas = queue.corpus_paths()
    if not deltas:
        return 0
    return merge_journals([path for _index, path in deltas], out_path,
                          max_size=max_size)


def run_coordinator(executor, resume: bool = False) -> CampaignReport:
    """Drive a distributed campaign from the coordinator seat.

    Publishes the job matrix to the queue, then polls: collected
    results are journaled to the campaign checkpoint (if configured) as
    they arrive, expired leases are swept, and tombstones become
    terminal failures.  The merge is the single-host merge —
    job-index-ordered over deduplicated results — so the report is
    bit-identical to an uninterrupted single-host run whenever every
    job eventually completed.

    A killed coordinator loses nothing: nodes keep draining their
    leases and parking results; re-running with ``resume=True`` (or
    even without a checkpoint — the queue itself holds every parked
    result) collects them and continues.
    """
    config = executor.config
    dist = config.dist.validate()
    report = new_report(config)
    started = time.perf_counter()
    jobs = executor.build_jobs()
    by_index = {job.job_index: job for job in jobs}
    fingerprint = jobs_fingerprint(jobs)
    journal: Optional[CheckpointJournal] = None
    cached: Dict[int, ShardResult] = {}
    if config.checkpoint_dir:
        journal = CheckpointJournal(config.checkpoint_dir)
        cached = journal.start(fingerprint, total_jobs=len(jobs),
                               resume=resume)
    queue = open_queue(dist, node="coordinator")
    todo = [job for job in jobs if job.job_index not in cached]
    queue.publish(todo, fingerprint, total_jobs=len(jobs),
                  lease_duration=dist.lease_duration,
                  max_attempts=dist.max_attempts,
                  retry_backoff=config.retry_backoff,
                  retry_jitter=config.retry_jitter)
    stop = executor._stop
    collected: Dict[int, ShardResult] = {}
    stones: Dict[int, dict] = {}
    outstanding: Set[int] = {job.job_index for job in todo}

    def out_of_time() -> bool:
        elapsed = time.perf_counter() - started
        if config.global_time_budget is not None \
                and elapsed >= config.global_time_budget:
            return True
        if dist.wait_timeout is not None and elapsed >= dist.wait_timeout:
            return True
        return stop.requested

    try:
        with _SignalGuard(stop):
            while outstanding:
                results = queue.collect_results(fingerprint)
                for index, result in results.items():
                    if index in collected or index not in outstanding:
                        continue
                    collected[index] = result
                    outstanding.discard(index)
                    if journal is not None:
                        journal.append(result)
                queue.sweep()
                for index, stone in queue.collect_tombstones().items():
                    if index in stones or index not in outstanding:
                        continue
                    stones[index] = stone
                    outstanding.discard(index)
                if not outstanding or out_of_time():
                    break
                time.sleep(dist.poll_interval)
    finally:
        if journal is not None:
            journal.close()
    terminal: List[ShardResult] = list(cached.values()) \
        + list(collected.values())
    for index, stone in stones.items():
        job = by_index.get(index)
        if job is not None:
            terminal.append(synthesize_tombstone_result(job, stone))
    terminal.sort(key=lambda result: result.job_index)
    executor._merge(report, jobs, terminal)
    report.metrics.merge(queue.metrics)
    merged_dir = dist.queue_dir or config.checkpoint_dir \
        or tempfile.mkdtemp(prefix="repro-dist-corpus-")
    merged_entries = merge_corpus_journals(
        queue, os.path.join(merged_dir, MERGED_CORPUS_NAME))
    if merged_entries:
        report.metrics.count("dist.corpus.merged_entries", merged_entries)
    queue.close()
    report.resumed_jobs = len(cached)
    report.interrupted = stop.requested
    report.interrupt_signal = stop.signal_name
    report.elapsed = time.perf_counter() - started
    return report
