"""Test-case reduction for failing mutants.

After the replay workflow captures a bug-triggering module (paper
§III-E), the module usually contains mutation debris irrelevant to the
bug.  :func:`reduce_module` greedily shrinks it while an
``is_interesting`` oracle keeps returning True — the same contract as
llvm-reduce / C-Reduce, over our IR.

Reduction transforms, tried smallest-effect-last:

* delete whole unused functions;
* delete dead instructions;
* replace an instruction's uses with one of its same-typed operands,
  then delete it (operand hoisting);
* replace an instruction's uses with a simple constant (0, 1, undef);
* fold a conditional branch to one of its sides;
* strip function/parameter attributes and call bundles.

Every candidate is applied to a clone and kept only if the result still
verifies and is still interesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from ..ir.instructions import BrInst, CallInst, Instruction
from ..ir.module import Module
from ..ir.values import ConstantInt
from ..ir.verifier import is_valid_module
from ..ir.types import IntType

Oracle = Callable[[Module], bool]


@dataclass
class ReductionResult:
    module: Module
    rounds: int
    candidates_tried: int
    candidates_kept: int
    original_instructions: int
    reduced_instructions: int

    def summary(self) -> str:
        return (f"reduced {self.original_instructions} -> "
                f"{self.reduced_instructions} instructions in "
                f"{self.rounds} rounds "
                f"({self.candidates_kept}/{self.candidates_tried} "
                "candidate edits kept)")


def _instruction_count(module: Module) -> int:
    return sum(fn.num_instructions() for fn in module.definitions())


def reduce_module(module: Module, is_interesting: Oracle,
                  max_rounds: int = 12,
                  max_candidates: int = 2000) -> ReductionResult:
    """Shrink ``module`` while ``is_interesting`` stays true.

    The input module is not modified; the reduced clone is returned.
    ``is_interesting`` must be true for the input (checked).
    """
    if not is_interesting(module):
        raise ValueError("the input module is not interesting")
    current = module.clone()
    original_size = _instruction_count(current)
    tried = kept = rounds = 0

    progress = True
    while progress and rounds < max_rounds and tried < max_candidates:
        progress = False
        rounds += 1
        for candidate_edit in _candidate_edits(current):
            if tried >= max_candidates:
                break
            attempt = current.clone()
            if not _apply_edit(attempt, candidate_edit):
                continue
            tried += 1
            if not is_valid_module(attempt):
                continue
            if is_interesting(attempt):
                current = attempt
                kept += 1
                progress = True
                break  # re-enumerate against the new smaller module
    return ReductionResult(
        module=current,
        rounds=rounds,
        candidates_tried=tried,
        candidates_kept=kept,
        original_instructions=original_size,
        reduced_instructions=_instruction_count(current),
    )


# ---------------------------------------------------------------------------
# Edits are (kind, function name, block index, instruction index, extra)
# tuples: positional addressing survives cloning.
# ---------------------------------------------------------------------------


def _candidate_edits(module: Module) -> Iterator[Tuple]:
    # 1. whole functions (except when they are the only definition).
    definitions = module.definitions()
    if len(definitions) > 1:
        for function in definitions:
            yield ("drop-function", function.name)

    for function in definitions:
        name = function.name
        # 2..4: per-instruction edits, last instruction first (later
        # instructions tend to be mutation debris).
        for block_index, block in enumerate(function.blocks):
            for inst_index in range(len(block.instructions) - 1, -1, -1):
                inst = block.instructions[inst_index]
                if inst.is_terminator():
                    if isinstance(inst, BrInst) and inst.is_conditional():
                        yield ("fold-branch", name, block_index, inst_index, 0)
                        yield ("fold-branch", name, block_index, inst_index, 1)
                    continue
                yield ("delete", name, block_index, inst_index)
                for operand_index, operand in enumerate(inst.operands):
                    if operand.type is inst.type:
                        yield ("hoist", name, block_index, inst_index,
                               operand_index)
                    # Look one level deeper: shortcuts trunc(zext(x))-style
                    # cast chains left behind by mutations.
                    if isinstance(operand, Instruction):
                        for deep_index, deep in enumerate(operand.operands):
                            if deep.type is inst.type:
                                yield ("hoist2", name, block_index,
                                       inst_index, operand_index, deep_index)
                if isinstance(inst.type, IntType):
                    for constant in (0, 1):
                        yield ("constify", name, block_index, inst_index,
                               constant)
                if isinstance(inst, CallInst) and inst.bundles:
                    yield ("strip-bundles", name, block_index, inst_index)
        # 5. attributes.
        if function.attributes:
            yield ("strip-fn-attrs", name)
        for arg_index, argument in enumerate(function.arguments):
            if argument.attributes:
                yield ("strip-arg-attrs", name, arg_index)


def _locate(module: Module, name: str, block_index: int,
            inst_index: int) -> Optional[Instruction]:
    function = module.get_function(name)
    if function is None or block_index >= len(function.blocks):
        return None
    block = function.blocks[block_index]
    if inst_index >= len(block.instructions):
        return None
    return block.instructions[inst_index]


def _apply_edit(module: Module, edit: Tuple) -> bool:
    kind = edit[0]
    if kind == "drop-function":
        function = module.get_function(edit[1])
        if function is None:
            return False
        # Only droppable when nothing in the module calls it.
        for other in module.definitions():
            if other is function:
                continue
            for inst in other.instructions():
                if isinstance(inst, CallInst) and inst.callee is function:
                    return False
        module.remove_function(edit[1])
        return True
    if kind == "strip-fn-attrs":
        function = module.get_function(edit[1])
        if function is None or not function.attributes:
            return False
        for attr_name in list(function.attributes.names()):
            function.attributes.remove(attr_name)
        return True
    if kind == "strip-arg-attrs":
        function = module.get_function(edit[1])
        if function is None or edit[2] >= len(function.arguments):
            return False
        argument = function.arguments[edit[2]]
        if not argument.attributes:
            return False
        for attr_name in list(argument.attributes.names()):
            argument.attributes.remove(attr_name)
        return True

    inst = _locate(module, edit[1], edit[2], edit[3])
    if inst is None:
        return False
    if kind == "delete":
        if inst.has_uses() or inst.is_terminator():
            return False
        inst.erase_from_parent()
        return True
    if kind == "hoist":
        operand_index = edit[4]
        if operand_index >= inst.num_operands():
            return False
        operand = inst.operands[operand_index]
        if operand.type is not inst.type or operand is inst:
            return False
        inst.replace_all_uses_with(operand)
        inst.erase_from_parent()
        return True
    if kind == "hoist2":
        operand_index, deep_index = edit[4], edit[5]
        if operand_index >= inst.num_operands():
            return False
        operand = inst.operands[operand_index]
        if not isinstance(operand, Instruction) \
                or deep_index >= operand.num_operands():
            return False
        deep = operand.operands[deep_index]
        if deep.type is not inst.type or deep is inst:
            return False
        inst.replace_all_uses_with(deep)
        inst.erase_from_parent()
        if not operand.has_uses() and not operand.has_side_effects() \
                and not operand.is_terminator():
            operand.erase_from_parent()
        return True
    if kind == "constify":
        if not isinstance(inst.type, IntType) or inst.is_terminator():
            return False
        inst.replace_all_uses_with(ConstantInt(inst.type, edit[4]))
        if not inst.has_side_effects():
            inst.erase_from_parent()
        return True
    if kind == "strip-bundles":
        if not isinstance(inst, CallInst) or not inst.bundles:
            return False
        replacement = CallInst(inst.callee, inst.args)
        replacement.name = inst.name
        block = inst.parent
        index = block.index_of(inst)
        inst.erase_from_parent()
        block.insert(index, replacement)
        return True
    if kind == "fold-branch":
        if not (isinstance(inst, BrInst) and inst.is_conditional()):
            return False
        taken = inst.operands[1 + edit[4]]
        dead = inst.operands[2 - edit[4]]
        block = inst.parent
        inst.erase_from_parent()
        block.append(BrInst(taken))
        if dead is not taken:
            for phi in dead.phis():
                phi.remove_incoming(block)
        return True
    return False
