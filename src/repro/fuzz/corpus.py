"""The runtime corpus: coverage-selected mutants as mutation sources.

A feedback-guided campaign keeps the mutants that reached *new* optimizer
behavior — rewrite rules fired, pass branches taken, seeded-bug paths hit
(see :mod:`repro.fuzz.feedback`) — and mutates from them alongside the
original seed, hypofuzz-style.  This module owns that corpus:

* :class:`CorpusEntry` — one admitted mutant: printed module text, a
  stable fingerprint, and the covered-feature set it contributed to;
* :class:`Corpus` — admission (a candidate enters iff it covers a
  feature nothing before it covered), greedy distillation down to a
  minimal covering subset when the corpus outgrows ``max_size``, and
  deterministic iteration order for the scheduler's arm registry;
* :class:`CorpusJournal` — an append-only fsync'd JSONL journal of
  admitted entries (the durability model of
  :mod:`repro.fuzz.checkpoint`: a crash mid-append damages at most the
  final line, which :meth:`Corpus.load` drops), so a campaign's corpus
  survives the process and can seed later sessions.

Determinism contract: admission, distillation, and iteration order are
pure functions of the candidate sequence — no wall clock, no ambient
RNG — so a re-run job rebuilds the identical corpus and the campaign's
``deterministic()`` metrics stay bit-identical across kill/resume.

This module used to hold the *seed generators* (the synthetic LLVM-style
unit-test corpus); those now live in :mod:`repro.fuzz.seeds` and remain
importable from here for one release via a ``DeprecationWarning`` shim
(see ``__getattr__`` below).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..ir.bitcode import BitcodeError, read_bitcode, write_bitcode
from ..ir.parser import ParseError, parse_module
from ..ir.printer import print_module

__all__ = ["Corpus", "CorpusEntry", "CorpusJournal", "merge_journals",
           "module_fingerprint"]

# Seed-generator names re-exported from repro.fuzz.seeds for one release.
_LEGACY_SEED_NAMES = ("ARCHETYPES", "STANDARD_WIDTHS", "corpus_modules",
                      "generate_corpus", "generate_large_corpus")

CORPUS_JOURNAL_VERSION = 1


def module_fingerprint(text: str) -> str:
    """A stable identity for one module's printed text."""
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class CorpusEntry:
    """One admitted mutant (immutable; picklable; JSON-able).

    ``features`` is the full feature set the mutant exercised, not just
    the novel part — distillation needs the whole set to compute minimal
    covers.  ``seed``/``source``/``operator`` record provenance: the
    mutation seed that created it, the source it was mutated from
    (``"seed"`` or a corpus fingerprint), and the mutation class.
    """

    text: str
    fingerprint: str
    features: FrozenSet[str]
    seed: int = -1
    source: str = "seed"
    operator: str = ""

    def to_dict(self, payload_format: str = "text") -> dict:
        """The journal record; ``payload_format="bitcode"`` stores the
        module as base64 bitcode instead of printed text.

        Corpus text is always printed-module text, and print∘parse is a
        fixpoint, so the bitcode record reconstructs the identical text
        on read — the entry fingerprint (a text hash) carries over
        unchanged.  A module outside the bitcode-encodable subset falls
        back to a text record; readers handle both (see
        :meth:`from_dict`), so journals may mix formats freely.
        """
        record = {
            "kind": "entry",
            "fingerprint": self.fingerprint,
            "features": sorted(self.features),
            "seed": self.seed,
            "source": self.source,
            "operator": self.operator,
        }
        if payload_format == "bitcode":
            try:
                data = write_bitcode(parse_module(self.text))
            except (ParseError, BitcodeError):
                pass
            else:
                record["format"] = "bitcode"
                record["data"] = base64.b64encode(data).decode("ascii")
                return record
        record["text"] = self.text
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        """Rebuild an entry from a text *or* bitcode journal record.

        Mixed journals are the norm once a campaign upgrades formats:
        old text records keep loading, bitcode records decode through
        ``read_bitcode`` + ``print_module``.  Raises ``KeyError`` when
        neither payload is present and ``ValueError`` on undecodable
        bitcode (both are treated as damage by :meth:`Corpus.load`).
        """
        if "text" in data:
            text = data["text"]
        elif data.get("format") == "bitcode":
            try:
                raw = base64.b64decode(data["data"], validate=True)
                text = print_module(read_bitcode(raw))
            except (KeyError, TypeError, ValueError, BitcodeError) as exc:
                raise ValueError(f"undecodable bitcode entry: {exc}")
        else:
            raise KeyError("text")
        return cls(text=text,
                   fingerprint=data["fingerprint"],
                   features=frozenset(data.get("features", ())),
                   seed=int(data.get("seed", -1)),
                   source=data.get("source", "seed"),
                   operator=data.get("operator", ""))


class CorpusJournal:
    """Durable JSONL journal of admitted corpus entries.

    Same durability model as the campaign checkpoint journal: one JSON
    object per line, flushed + fsync'd before :meth:`append` returns, so
    a crash damages at most the trailing line.  The journal is
    write-through persistence — a fresh run truncates it (jobs are
    atomic; a killed job re-runs from scratch and rebuilds the identical
    corpus), and :meth:`Corpus.load` rehydrates it for later sessions.
    """

    def __init__(self, path: str, payload_format: str = "text") -> None:
        if payload_format not in ("text", "bitcode"):
            raise ValueError(f"payload_format must be 'text' or "
                             f"'bitcode', got {payload_format!r}")
        self.path = path
        self.payload_format = payload_format
        self._stream = None

    def start(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._stream = open(self.path, "w")
        self._write_line(json.dumps(
            {"kind": "header", "version": CORPUS_JOURNAL_VERSION,
             "format": self.payload_format},
            sort_keys=True))

    def append(self, entry: CorpusEntry) -> None:
        if self._stream is None:
            self.start()
        self._write_line(json.dumps(entry.to_dict(self.payload_format),
                                    sort_keys=True))

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def _write_line(self, line: str) -> None:
        self._stream.write(line + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def __enter__(self) -> "CorpusJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class Corpus:
    """Coverage-keyed mutant store with admission and distillation.

    ``max_size`` bounds the entry count: when an admission pushes past
    it the corpus is distilled to a greedy minimal covering subset
    (largest marginal contribution first, admission order breaking
    ties), and — if even the distilled cover is too large — truncated to
    the first ``max_size`` cover members, dropping the least-contributing
    tail.  Admission and distillation are deterministic in the candidate
    sequence alone.
    """

    def __init__(self, max_size: int = 64,
                 journal: Optional[CorpusJournal] = None) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self.journal = journal
        self.covered: Set[str] = set()
        self.admitted_count = 0
        self.distilled_count = 0
        self._entries: Dict[str, CorpusEntry] = {}  # fingerprint -> entry

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def entries(self) -> List[CorpusEntry]:
        """Entries in deterministic (admission, then distillation) order."""
        return list(self._entries.values())

    def get(self, fingerprint: str) -> Optional[CorpusEntry]:
        return self._entries.get(fingerprint)

    def features_covered(self) -> int:
        return len(self.covered)

    # -- admission ----------------------------------------------------------

    def new_features(self, features: Iterable[str]) -> FrozenSet[str]:
        """The subset of ``features`` nothing in coverage has reached."""
        return frozenset(features) - self.covered

    def cover(self, features: Iterable[str]) -> None:
        """Mark features as seen without admitting an entry.

        The driver uses this for the seed module's own baseline behavior
        (already a mutation source, so not corpus material) and for
        crash-path features where no admissible mutant text exists.
        """
        self.covered.update(features)

    def consider(self, entry: CorpusEntry) -> FrozenSet[str]:
        """Admit ``entry`` iff it covers new features; return the novel set.

        Returns the (possibly empty) set of features that were new; the
        entry was admitted iff that set is non-empty.  Admission journals
        the entry durably (when a journal is attached) and may trigger
        distillation.
        """
        fresh = self.new_features(entry.features)
        if not fresh or entry.fingerprint in self._entries:
            return frozenset()
        self.covered.update(entry.features)
        self._entries[entry.fingerprint] = entry
        self.admitted_count += 1
        if self.journal is not None:
            self.journal.append(entry)
        if len(self._entries) > self.max_size:
            self.compact()
        return fresh

    # -- distillation (hypofuzz-style minimal covering set) -----------------

    def distill(self) -> List[CorpusEntry]:
        """A greedy minimal covering subset of the current entries.

        Classic greedy set cover over the union of entry features:
        repeatedly take the entry covering the most still-uncovered
        features, breaking ties by admission order.  The result is a
        subset of the live entries and covers exactly their feature
        union (coverage recorded via :meth:`cover` has no entry to keep
        and never forces one).
        """
        remaining: Set[str] = set()
        for entry in self._entries.values():
            remaining |= entry.features
        chosen: List[CorpusEntry] = []
        pool = list(self._entries.values())
        while remaining:
            best = None
            best_gain = 0
            for entry in pool:
                gain = len(entry.features & remaining)
                if gain > best_gain:
                    best, best_gain = entry, gain
            if best is None:
                break
            chosen.append(best)
            remaining -= best.features
            pool.remove(best)
        return chosen

    def compact(self) -> int:
        """Distill in place; returns how many entries were dropped.

        Keeps at most ``max_size`` entries: the greedy cover, truncated
        (in cover order, so the least-contributing members go first)
        when the cover itself is too large.  ``covered`` is monotone —
        features stay covered even when their last witness is dropped,
        so admission never re-admits behavior the campaign already saw.
        """
        before = len(self._entries)
        kept = self.distill()[: self.max_size]
        self._entries = {entry.fingerprint: entry for entry in kept}
        dropped = before - len(self._entries)
        if dropped:
            self.distilled_count += dropped
        return dropped

    # -- persistence --------------------------------------------------------

    @classmethod
    def load(cls, path: str, max_size: int = 64,
             journal: Optional[CorpusJournal] = None) -> "Corpus":
        """Rehydrate a corpus from a journal written by :class:`CorpusJournal`.

        Tolerates the single crash failure mode — a damaged or
        newline-less trailing line — by dropping it; damage anywhere
        else raises ``ValueError`` (real corruption should be loud).
        """
        corpus = cls(max_size=max_size, journal=journal)
        with open(path, "rb") as stream:
            raw = stream.read()
        pieces = raw.splitlines(keepends=True)
        for position, piece in enumerate(pieces):
            last = position == len(pieces) - 1
            stripped = piece.strip()
            if not stripped:
                continue
            try:
                data = json.loads(stripped.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if last:
                    break  # crash mid-append: drop the damaged tail
                raise ValueError(f"{path}: damaged journal line "
                                 f"{position + 1}")
            if not piece.endswith(b"\n") and last:
                break  # complete-looking JSON but the newline never landed
            if not isinstance(data, dict) or data.get("kind") != "entry":
                continue  # header or foreign record
            try:
                corpus.consider(CorpusEntry.from_dict(data))
            except (KeyError, ValueError):
                if last:
                    break
                raise ValueError(f"{path}: malformed entry at line "
                                 f"{position + 1}")
        return corpus


def merge_journals(paths: Iterable[str], out_path: str,
                   max_size: int = 4096) -> int:
    """Merge several corpus journals into one, in the order given.

    The cross-job (and cross-node) corpus merge: entries from each
    journal are re-admitted under the usual admit-iff-new-features rule
    into one corpus backed by a fresh journal at ``out_path``, so the
    merged journal is itself loadable and can seed the next campaign.
    Order matters for which duplicate witness survives — callers pass
    paths in job-index order so the merge is deterministic regardless
    of which node produced which delta.  Unreadable or damaged-beyond-
    the-tail journals are skipped (a torn delta loses only its own
    entries).  Returns the merged corpus size.
    """
    journal = CorpusJournal(out_path)
    merged = Corpus(max_size=max_size, journal=journal)
    try:
        for path in paths:
            try:
                delta = Corpus.load(path, max_size=max_size)
            except (OSError, ValueError):
                continue
            for entry in delta.entries():
                merged.consider(entry)
    finally:
        journal.close()
    return len(merged)


def __getattr__(name: str):
    """Legacy shim: the seed generators lived here before the split.

    ``from repro.fuzz.corpus import generate_corpus`` keeps working for
    one release but warns; import from :mod:`repro.fuzz.seeds` instead.
    """
    if name in _LEGACY_SEED_NAMES:
        import warnings

        from . import seeds

        warnings.warn(
            f"repro.fuzz.corpus.{name} moved to repro.fuzz.seeds.{name}; "
            "repro.fuzz.corpus now holds the runtime coverage corpus "
            "(this re-export will be removed next release)",
            DeprecationWarning, stacklevel=2)
        return getattr(seeds, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
