"""Control-flow-graph utilities: traversal orders and reachability."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


def successors(block: BasicBlock) -> List[BasicBlock]:
    return block.successors()


def predecessors(block: BasicBlock) -> List[BasicBlock]:
    return block.predecessors()


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable blocks omitted)."""
    entry = function.entry_block()
    if entry is None:
        return []
    visited: Set[int] = set()
    order: List[BasicBlock] = []
    # Iterative DFS computing postorder.
    stack: List[tuple] = [(entry, iter(entry.successors()))]
    visited.add(id(entry))
    while stack:
        block, successor_iter = stack[-1]
        advanced = False
        for successor in successor_iter:
            if id(successor) not in visited:
                visited.add(id(successor))
                stack.append((successor, iter(successor.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


def postorder(function: Function) -> List[BasicBlock]:
    order = reverse_postorder(function)
    order.reverse()
    return order


def reachable_blocks(function: Function) -> Set[int]:
    """ids of blocks reachable from the entry."""
    return {id(block) for block in reverse_postorder(function)}


def predecessor_map(function: Function) -> Dict[int, List[BasicBlock]]:
    """Map block id -> predecessor blocks, computed in one pass."""
    preds: Dict[int, List[BasicBlock]] = {id(b): [] for b in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            entry = preds.get(id(successor))
            if entry is not None and block not in entry:
                entry.append(block)
    return preds


def has_single_predecessor(block: BasicBlock) -> bool:
    return len(block.predecessors()) == 1
