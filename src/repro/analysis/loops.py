"""Natural-loop detection (LoopInfo).

Back edges are CFG edges whose target dominates their source; each back
edge ``latch -> header`` defines a natural loop: the header plus every
block that can reach the latch without passing through the header.
Loops sharing a header are merged, like LLVM's LoopInfo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .domtree import DominatorTree


@dataclass
class Loop:
    header: BasicBlock
    blocks: List[BasicBlock] = field(default_factory=list)
    latches: List[BasicBlock] = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return any(b is block for b in self.blocks)

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if its only
        successor is the header (LLVM's canonical preheader condition)."""
        outside = [p for p in self.header.predecessors()
                   if not self.contains(p)]
        if len(outside) != 1:
            return None
        candidate = outside[0]
        if candidate.successors() == [self.header]:
            return candidate
        return None

    def exits(self) -> List[BasicBlock]:
        """Blocks outside the loop reachable directly from inside it."""
        seen: Set[int] = set()
        result: List[BasicBlock] = []
        for block in self.blocks:
            for successor in block.successors():
                if not self.contains(successor) \
                        and id(successor) not in seen:
                    seen.add(id(successor))
                    result.append(successor)
        return result

    def __repr__(self) -> str:
        return (f"Loop(header=%{self.header.name}, "
                f"{len(self.blocks)} blocks)")


class LoopInfo:
    """All natural loops of a function."""

    def __init__(self, function: Function,
                 domtree: Optional[DominatorTree] = None) -> None:
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self.loops: List[Loop] = []
        self._find_loops()

    def _find_loops(self) -> None:
        by_header: Dict[int, Loop] = {}
        for block in self.function.blocks:
            if not self.domtree.is_reachable(block):
                continue
            for successor in block.successors():
                if self.domtree.dominates_block(successor, block):
                    # block -> successor is a back edge.
                    loop = by_header.get(id(successor))
                    if loop is None:
                        loop = Loop(header=successor, blocks=[successor])
                        by_header[id(successor)] = loop
                        self.loops.append(loop)
                    loop.latches.append(block)
                    self._collect_body(loop, block)
        # Deterministic order: by header position in the function.
        order = {id(b): i for i, b in enumerate(self.function.blocks)}
        self.loops.sort(key=lambda lp: order[id(lp.header)])

    def _collect_body(self, loop: Loop, latch: BasicBlock) -> None:
        """Blocks reaching the latch without passing through the header."""
        worklist = [latch]
        while worklist:
            block = worklist.pop()
            if loop.contains(block):
                continue
            loop.blocks.append(block)
            for predecessor in block.predecessors():
                if predecessor is not loop.header:
                    worklist.append(predecessor)

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block`` (smallest body)."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if loop.contains(block):
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)
