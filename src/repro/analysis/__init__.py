"""Analyses over the IR: CFG, dominance, overlays, value tracking."""

from .cfg import (postorder, predecessor_map, reachable_blocks,
                  reverse_postorder)
from .domtree import DominatorTree

__all__ = ["postorder", "predecessor_map", "reachable_blocks",
           "reverse_postorder", "DominatorTree"]
