"""Two-level analysis cache (paper §III-B).

Alive-mutate caches analyses (dominator tree, shufflable ranges, constant
pool) for the *original* function once, then runs many mutants cloned from
it.  Mutations can invalidate some of that information; the paper's answer
is a two-level structure: mutant-specific information is consulted first,
falling back to the immutable original information when the lookup misses.

Because a mutant here is a deep *clone*, original-level answers are
translated through stable names: clones preserve block and value names, so
dominance between mutant blocks can be answered by the original tree as
long as the mutant's CFG is untouched.  Mutations that change the CFG (or
shuffle instructions, etc.) mark the relevant key dirty; the next query
computes a mutant-level replacement lazily.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Argument, Constant, Value
from .constants_pool import ConstantPool
from .domtree import DominatorTree
from .shuffle_ranges import ShuffleRange, shufflable_ranges


_MISSING = object()


class OriginalFunctionInfo:
    """Immutable analyses of an original (pre-mutation) function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.domtree = DominatorTree(function)
        self.shuffle_ranges: List[ShuffleRange] = shufflable_ranges(function)
        self.constant_pool = ConstantPool(function)
        # Name -> original block, for translating mutant queries.
        self.blocks_by_name: Dict[str, BasicBlock] = {
            block.name: block for block in function.blocks if block.name
        }
        # Mutation-site descriptors keyed by kind, shared by every mutant
        # cloned from this function (see MutantOverlay.enumerate_sites).
        self._site_cache: Dict[str, List[tuple]] = {}

    def cached_sites(self, kind: str,
                     scan: Callable[[Function], List[tuple]]) -> List[tuple]:
        sites = self._site_cache.get(kind)
        if sites is None:
            sites = scan(self.function)
            self._site_cache[kind] = sites
        return sites


class MutantOverlay:
    """Per-mutant view that answers analysis queries with fallback.

    Dominance queries translate the mutant's blocks to the original's via
    names and use the original tree while the CFG is clean; once
    ``invalidate_cfg()`` has been called, a mutant-level tree is computed
    lazily and used instead.  Instruction-level ordering inside a block is
    always read from the mutant (it is cheap and always current).
    """

    def __init__(self, mutant: Function, original: OriginalFunctionInfo) -> None:
        self.mutant = mutant
        self.original = original
        self._cfg_dirty = False
        self._mutant_domtree: Optional[DominatorTree] = None
        self._has_callers: Optional[bool] = None
        # id(mutant block) -> original block, filled lazily; cloning
        # preserves names, so the name lookup runs once per block.
        self._translation: Dict[int, Optional[BasicBlock]] = {}
        self._stats = {"original_hits": 0, "mutant_computes": 0}
        # Incremental-optimization support: names of the blocks the
        # applied mutations touched (None = effects could not be
        # localized, degrade to whole-function), plus a note counter the
        # engine uses to auto-degrade uninstrumented operators and to
        # recognize pristine (not-yet-mutated) clones.
        self._touched: Optional[Set[str]] = set()
        self._touch_notes = 0

    def signature_is_frozen(self) -> bool:
        """May the mutant's signature not change (fresh parameters)?

        Adding a parameter to a function that is called inside the module
        would break every call site, so the dominating-value primitive
        must not do it.  Computed lazily and cached per mutant.
        """
        if self._has_callers is None:
            from ..ir.instructions import CallInst

            module = self.mutant.parent
            self._has_callers = False
            if module is not None:
                for function in module.definitions():
                    if function is self.mutant:
                        continue
                    for inst in function.instructions():
                        if isinstance(inst, CallInst) \
                                and inst.callee is self.mutant:
                            self._has_callers = True
                            break
                    if self._has_callers:
                        break
        return self._has_callers

    # -- touched-region tracking ---------------------------------------------

    @property
    def touch_notes(self) -> int:
        """How many touched-region notes operators have recorded."""
        return self._touch_notes

    def note_touched_block(self, block: Optional[BasicBlock]) -> None:
        """Record that a mutation changed something inside ``block``."""
        self._touch_notes += 1
        if self._touched is None:
            return
        if block is None or not block.name:
            self._touched = None
        else:
            self._touched.add(block.name)

    def note_touched_value(self, value: Value) -> None:
        """Record a touched instruction (its block); other value kinds —
        arguments, constants — are not rule anchors and need no note."""
        if isinstance(value, Instruction):
            self.note_touched_block(value.parent)

    def note_touched_all(self) -> None:
        """Degrade to whole-function: the effect cannot be localized."""
        self._touch_notes += 1
        self._touched = None

    def note_touched_nothing(self) -> None:
        """Record a mutation the pass pipeline cannot observe.

        For mutations that change only function/parameter attributes (or
        other metadata no optimizer pass or analysis reads): the note
        keeps the engine from auto-degrading to whole-function while
        leaving the touched set empty.  Any future pass that starts
        consulting attributes must make its mutation call
        :meth:`note_touched_all` instead.
        """
        self._touch_notes += 1

    def touched_blocks(self) -> Optional[FrozenSet[str]]:
        """Names of mutation-touched blocks, or None for whole-function."""
        if self._touched is None:
            return None
        return frozenset(self._touched)

    # -- mutation-site enumeration -------------------------------------------

    def enumerate_sites(self, kind: str,
                        scan: Callable[[Function], List[tuple]]) -> List:
        """Mutation sites of ``kind`` resolved against the mutant.

        ``scan(function)`` returns positional descriptors — ``(block
        index, instruction index)`` tuples, optionally with trailing
        extras.  While the mutant is pristine (no operator has changed
        it yet) the descriptors are computed once per *original*
        function and shared by all of its mutants; after the first
        mutation they are recomputed live.  Resolution preserves the
        scan order, so cached and live enumeration present candidates
        identically (same RNG draws either way).
        """
        if self._touch_notes == 0:
            descriptors = self.original.cached_sites(kind, scan)
        else:
            descriptors = scan(self.mutant)
        blocks = self.mutant.blocks
        sites: List = []
        for descriptor in descriptors:
            inst = blocks[descriptor[0]].instructions[descriptor[1]]
            if len(descriptor) > 2:
                sites.append((inst, *descriptor[2:]))
            else:
                sites.append(inst)
        return sites

    # -- invalidation --------------------------------------------------------

    def invalidate_cfg(self) -> None:
        """Call after any mutation that adds/removes blocks or edges."""
        self._cfg_dirty = True
        self._mutant_domtree = None

    def invalidate_positions(self) -> None:
        """Call after reordering instructions inside a block.

        Instruction positions are always read live from the mutant, so
        nothing is cached to drop; the hook exists for symmetry and for the
        ablation bench to count invalidations.
        """

    @property
    def stats(self) -> Dict[str, int]:
        return dict(self._stats)

    # -- dominance ------------------------------------------------------------

    def _domtree_for_mutant(self) -> DominatorTree:
        if self._mutant_domtree is None:
            self._mutant_domtree = DominatorTree(self.mutant)
            self._stats["mutant_computes"] += 1
        return self._mutant_domtree

    def _translate(self, block: BasicBlock) -> Optional[BasicBlock]:
        key = id(block)
        cached = self._translation.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        if block.parent is self.original.function:
            resolved: Optional[BasicBlock] = block
        else:
            resolved = self.original.blocks_by_name.get(block.name)
        self._translation[key] = resolved
        return resolved

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        if self._cfg_dirty:
            return self._domtree_for_mutant().dominates_block(a, b)
        original_a = self._translate(a)
        original_b = self._translate(b)
        if original_a is None or original_b is None:
            # A freshly-created block: fall through to mutant level.
            return self._domtree_for_mutant().dominates_block(a, b)
        self._stats["original_hits"] += 1
        return self.original.domtree.dominates_block(original_a, original_b)

    def strictly_dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominates(self, definition: Value, point_block: BasicBlock,
                  point_index: int) -> bool:
        """Is ``definition`` available at slot ``point_index`` of the block?

        Block-level dominance goes through the two-level lookup;
        same-block ordering is read live from the mutant.
        """
        if isinstance(definition, (Constant, Argument)):
            return True
        if not isinstance(definition, Instruction):
            return False
        def_block = definition.parent
        if def_block is None:
            return False
        if def_block is point_block:
            return def_block.index_of(definition) < point_index
        return self.strictly_dominates_block(def_block, point_block)

    # -- values available at a program point -----------------------------------

    def dominating_values_at(self, block: BasicBlock, index: int,
                             type=None) -> List[Value]:
        """SSA values usable as operands at (block, index), oldest first.

        Includes function arguments and results of dominating instructions;
        optionally filtered by type.
        """
        values: List[Value] = []
        for argument in self.mutant.arguments:
            if type is None or argument.type is type:
                values.append(argument)
        for candidate_block in self.mutant.blocks:
            if candidate_block is block:
                for inst in candidate_block.instructions[:index]:
                    if inst.type.is_first_class() and (
                            type is None or inst.type is type):
                        values.append(inst)
            elif self.strictly_dominates_block(candidate_block, block):
                for inst in candidate_block.instructions:
                    if inst.type.is_first_class() and (
                            type is None or inst.type is type):
                        values.append(inst)
        return values

    # -- pass-through original-level info ----------------------------------------

    @property
    def constant_pool(self) -> ConstantPool:
        return self.original.constant_pool

    @property
    def shuffle_ranges(self) -> List[ShuffleRange]:
        return self.original.shuffle_ranges
