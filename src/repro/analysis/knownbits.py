"""KnownBits and related value tracking, modeled on LLVM's ValueTracking.

The InstCombine-style peephole rules use this to justify transforms
("the top bits are known zero, so this zext-of-trunc is a no-op").
Soundness of this analysis is property-tested against the concrete
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.instructions import (BinaryOperator, CallInst, CastInst, FreezeInst,
                               ICmpInst, Instruction, PhiNode, SelectInst)
from ..ir.types import IntType
from ..ir.values import ConstantInt, PoisonValue, UndefValue, Value

MAX_DEPTH = 6


@dataclass
class KnownBits:
    """Bit-level facts: ``zero`` has a 1 where the bit is known 0, ``one``
    where it is known 1.  ``zero & one == 0`` always holds."""

    width: int
    zero: int = 0
    one: int = 0

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        self.zero &= mask
        self.one &= mask
        if self.zero & self.one:
            raise ValueError("conflicting known bits")

    @classmethod
    def unknown(cls, width: int) -> "KnownBits":
        return cls(width)

    @classmethod
    def constant(cls, width: int, value: int) -> "KnownBits":
        mask = (1 << width) - 1
        value &= mask
        return cls(width, zero=~value & mask, one=value)

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def is_constant(self) -> bool:
        return (self.zero | self.one) == self.mask

    def constant_value(self) -> int:
        if not self.is_constant():
            raise ValueError("bits not fully known")
        return self.one

    def is_known_zero(self) -> bool:
        return self.zero == self.mask

    def is_non_zero(self) -> bool:
        return self.one != 0

    def is_non_negative(self) -> bool:
        return bool(self.zero >> (self.width - 1))

    def is_negative(self) -> bool:
        return bool(self.one >> (self.width - 1))

    def min_unsigned(self) -> int:
        return self.one

    def max_unsigned(self) -> int:
        return self.mask & ~self.zero

    def admits(self, value: int) -> bool:
        """Does a concrete value agree with these known bits?"""
        value &= self.mask
        return (value & self.zero) == 0 and (value & self.one) == self.one

    def count_leading_known_zeros(self) -> int:
        count = 0
        for bit in range(self.width - 1, -1, -1):
            if self.zero >> bit & 1:
                count += 1
            else:
                break
        return count

    def __and__(self, other: "KnownBits") -> "KnownBits":
        return KnownBits(self.width,
                         zero=self.zero | other.zero,
                         one=self.one & other.one)

    def __or__(self, other: "KnownBits") -> "KnownBits":
        return KnownBits(self.width,
                         zero=self.zero & other.zero,
                         one=self.one | other.one)

    def __xor__(self, other: "KnownBits") -> "KnownBits":
        known = (self.zero | self.one) & (other.zero | other.one)
        ones = (self.one ^ other.one) & known
        return KnownBits(self.width, zero=known & ~ones, one=ones)

    def intersect(self, other: "KnownBits") -> "KnownBits":
        """Facts true on both paths (for select/phi merging)."""
        return KnownBits(self.width,
                         zero=self.zero & other.zero,
                         one=self.one & other.one)


def compute_known_bits(value: Value, depth: int = 0) -> KnownBits:
    """Conservative known-bits for an integer-typed SSA value."""
    if not isinstance(value.type, IntType):
        raise ValueError("known bits only defined for integers")
    width = value.type.width
    if isinstance(value, ConstantInt):
        return KnownBits.constant(width, value.value)
    if isinstance(value, (UndefValue, PoisonValue)):
        # Undef/poison may be folded to anything; claim nothing.
        return KnownBits.unknown(width)
    if depth >= MAX_DEPTH or not isinstance(value, Instruction):
        return KnownBits.unknown(width)
    return _known_bits_instruction(value, depth)


def _known_bits_instruction(inst: Instruction, depth: int) -> KnownBits:
    width = inst.type.width
    def recurse(v):
        return compute_known_bits(v, depth + 1)

    if isinstance(inst, BinaryOperator):
        opcode = inst.opcode
        if opcode == "and":
            return recurse(inst.lhs) & recurse(inst.rhs)
        if opcode == "or":
            return recurse(inst.lhs) | recurse(inst.rhs)
        if opcode == "xor":
            return recurse(inst.lhs) ^ recurse(inst.rhs)
        if opcode in ("add", "sub"):
            return _known_bits_addsub(opcode, recurse(inst.lhs),
                                      recurse(inst.rhs), width)
        if opcode == "mul":
            return _known_bits_mul(recurse(inst.lhs), recurse(inst.rhs), width)
        if opcode == "shl" and isinstance(inst.rhs, ConstantInt):
            shift = inst.rhs.value
            if shift >= width:
                return KnownBits.unknown(width)  # poison; claim nothing
            known = recurse(inst.lhs)
            mask = (1 << width) - 1
            return KnownBits(width,
                             zero=((known.zero << shift) | ((1 << shift) - 1)) & mask,
                             one=(known.one << shift) & mask)
        if opcode == "lshr" and isinstance(inst.rhs, ConstantInt):
            shift = inst.rhs.value
            if shift >= width:
                return KnownBits.unknown(width)
            known = recurse(inst.lhs)
            mask = (1 << width) - 1
            high_zeros = mask & ~(mask >> shift)
            return KnownBits(width,
                             zero=(known.zero >> shift) | high_zeros,
                             one=known.one >> shift)
        if opcode == "ashr" and isinstance(inst.rhs, ConstantInt):
            shift = inst.rhs.value
            if shift >= width:
                return KnownBits.unknown(width)
            known = recurse(inst.lhs)
            sign_known_zero = bool(known.zero >> (width - 1))
            sign_known_one = bool(known.one >> (width - 1))
            mask = (1 << width) - 1
            zero = known.zero >> shift
            one = known.one >> shift
            high = mask & ~(mask >> shift)
            if sign_known_zero:
                zero |= high
            elif sign_known_one:
                one |= high
            return KnownBits(width, zero=zero, one=one)
        if opcode in ("udiv", "urem") and isinstance(inst.rhs, ConstantInt) \
                and inst.rhs.value != 0:
            if opcode == "urem":
                # Result < divisor: high bits above divisor's top bit are 0.
                divisor = inst.rhs.value
                top = divisor.bit_length()
                mask = (1 << width) - 1
                return KnownBits(width, zero=mask & ~((1 << top) - 1))
            return KnownBits.unknown(width)
        return KnownBits.unknown(width)

    if isinstance(inst, CastInst):
        if inst.opcode == "zext":
            src = compute_known_bits(inst.value, depth + 1)
            mask = (1 << width) - 1
            high = mask & ~src.mask
            return KnownBits(width, zero=src.zero | high, one=src.one)
        if inst.opcode == "trunc":
            src = compute_known_bits(inst.value, depth + 1)
            mask = (1 << width) - 1
            return KnownBits(width, zero=src.zero & mask, one=src.one & mask)
        if inst.opcode == "sext":
            src = compute_known_bits(inst.value, depth + 1)
            src_width = src.width
            mask = (1 << width) - 1
            high = mask & ~src.mask
            if src.zero >> (src_width - 1) & 1:
                return KnownBits(width, zero=src.zero | high, one=src.one)
            if src.one >> (src_width - 1) & 1:
                return KnownBits(width, zero=src.zero, one=src.one | high)
            return KnownBits(width, zero=src.zero & (src.mask >> 1),
                             one=src.one & (src.mask >> 1))
        return KnownBits.unknown(width)

    if isinstance(inst, SelectInst):
        true_known = compute_known_bits(inst.true_value, depth + 1)
        false_known = compute_known_bits(inst.false_value, depth + 1)
        return true_known.intersect(false_known)

    if isinstance(inst, FreezeInst) and isinstance(inst.value.type, IntType):
        # freeze only narrows nondeterminism; facts about the input hold
        # for non-poison inputs, but a poison input may become anything,
        # so claim nothing.
        return KnownBits.unknown(width)

    if isinstance(inst, PhiNode):
        merged: Optional[KnownBits] = None
        for incoming_value, _ in inst.incoming():
            if depth + 1 >= MAX_DEPTH:
                return KnownBits.unknown(width)
            known = compute_known_bits(incoming_value, depth + 1)
            merged = known if merged is None else merged.intersect(known)
        return merged if merged is not None else KnownBits.unknown(width)

    if isinstance(inst, ICmpInst):
        return KnownBits.unknown(width)

    if isinstance(inst, CallInst):
        base = inst.intrinsic_name()
        if base in ("llvm.umin", "llvm.umax") and len(inst.args) == 2:
            lhs = compute_known_bits(inst.args[0], depth + 1)
            rhs = compute_known_bits(inst.args[1], depth + 1)
            # Common leading bits of both bounds are preserved only in
            # special cases; keep it simple and sound: intersect.
            return lhs.intersect(rhs)
        if base == "llvm.ctpop":
            top = inst.type.width.bit_length()
            mask = (1 << width) - 1
            return KnownBits(width, zero=mask & ~((1 << top) - 1))
        return KnownBits.unknown(width)

    return KnownBits.unknown(width)


def _known_bits_addsub(opcode: str, lhs: KnownBits, rhs: KnownBits,
                       width: int) -> KnownBits:
    """Ripple known bits through add/sub from the bottom until uncertain."""
    mask = (1 << width) - 1
    if opcode == "sub":
        # a - b == a + ~b + 1; rewrite rhs and start with carry-in 1.
        rhs = KnownBits(width, zero=rhs.one, one=rhs.zero)
        carry = True
    else:
        carry = False
    zero = one = 0
    carry_known = True
    for bit in range(width):
        lhs_known = bool((lhs.zero | lhs.one) >> bit & 1)
        rhs_known = bool((rhs.zero | rhs.one) >> bit & 1)
        if not (lhs_known and rhs_known and carry_known):
            carry_known = False
            continue
        lhs_bit = bool(lhs.one >> bit & 1)
        rhs_bit = bool(rhs.one >> bit & 1)
        total = int(lhs_bit) + int(rhs_bit) + int(carry)
        if total & 1:
            one |= 1 << bit
        else:
            zero |= 1 << bit
        carry = total >= 2
    return KnownBits(width, zero=zero & mask, one=one & mask)


def _known_bits_mul(lhs: KnownBits, rhs: KnownBits, width: int) -> KnownBits:
    """Low-bit tracking: trailing zeros add; a fully-known product folds."""
    if lhs.is_constant() and rhs.is_constant():
        return KnownBits.constant(width, lhs.constant_value() * rhs.constant_value())
    trailing = _trailing_known_zeros(lhs) + _trailing_known_zeros(rhs)
    trailing = min(trailing, width)
    return KnownBits(width, zero=(1 << trailing) - 1)


def _trailing_known_zeros(known: KnownBits) -> int:
    count = 0
    for bit in range(known.width):
        if known.zero >> bit & 1:
            count += 1
        else:
            break
    return count


# -- derived predicates -------------------------------------------------------


def is_known_non_zero(value: Value, depth: int = 0) -> bool:
    if isinstance(value, ConstantInt):
        return value.value != 0
    if not isinstance(value.type, IntType):
        return False
    known = compute_known_bits(value, depth)
    if known.is_non_zero():
        return True
    if isinstance(value, BinaryOperator) and value.opcode == "or":
        return (is_known_non_zero(value.lhs, depth + 1)
                or is_known_non_zero(value.rhs, depth + 1))
    return False


def is_known_non_negative(value: Value, depth: int = 0) -> bool:
    if not isinstance(value.type, IntType):
        return False
    if isinstance(value, CastInst) and value.opcode == "zext":
        return True
    return compute_known_bits(value, depth).is_non_negative()


def compute_num_sign_bits(value: Value, depth: int = 0) -> int:
    """Lower bound on the number of identical top (sign) bits."""
    if not isinstance(value.type, IntType):
        return 1
    width = value.type.width
    if isinstance(value, ConstantInt):
        signed = value.signed_value()
        if signed < 0:
            signed = ~signed
        return width - signed.bit_length()
    if depth >= MAX_DEPTH or not isinstance(value, Instruction):
        return 1
    if isinstance(value, CastInst):
        if value.opcode == "sext":
            gained = width - value.src_type.width
            return gained + compute_num_sign_bits(value.value, depth + 1)
        if value.opcode == "zext":
            gained = width - value.src_type.width
            return max(1, gained)
        return 1
    if isinstance(value, BinaryOperator) and value.opcode == "ashr" \
            and isinstance(value.rhs, ConstantInt) and value.rhs.value < width:
        base = compute_num_sign_bits(value.lhs, depth + 1)
        return min(width, base + value.rhs.value)
    if isinstance(value, SelectInst):
        return min(compute_num_sign_bits(value.true_value, depth + 1),
                   compute_num_sign_bits(value.false_value, depth + 1))
    known = compute_known_bits(value, depth)
    count = 1
    top = width - 1
    if known.zero >> top & 1:
        count = known.count_leading_known_zeros()
    elif known.one >> top & 1:
        count = 0
        for bit in range(width - 1, -1, -1):
            if known.one >> bit & 1:
                count += 1
            else:
                break
    return max(1, count)
