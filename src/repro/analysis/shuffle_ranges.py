"""Maximal shufflable instruction ranges (paper §IV-D).

A run of consecutive instructions can be permuted freely — without breaking
SSA — when no instruction in the run uses the result of another instruction
in the run.  Semantics may well change (a load may move across a clobbering
call, as in the paper's Listing 8); that is the point of the mutation.
Phis must stay at the block head and terminators at the tail, so they never
participate.

Ranges are precomputed during initialization so the mutation itself is a
cheap permutation (the paper computes these "during its initialization phase
so that this mutation can be performed rapidly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import PhiNode


@dataclass(frozen=True)
class ShuffleRange:
    """A maximal shufflable run: instruction slots [start, end) of a block."""

    block_name: str
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


def shufflable_ranges_in_block(block: BasicBlock) -> List[ShuffleRange]:
    """Maximal runs of length >= 2 with no intra-run def-use edges."""
    instructions = block.instructions
    lo = block.first_non_phi_index()
    hi = len(instructions)
    if instructions and instructions[-1].is_terminator():
        hi -= 1

    ranges: List[ShuffleRange] = []
    start = lo
    while start < hi:
        # Greedily extend [start, end) while independence holds.
        end = start + 1
        defined = {id(instructions[start])}
        while end < hi:
            candidate = instructions[end]
            if any(id(op) in defined for op in candidate.operands):
                break
            defined.add(id(candidate))
            end += 1
        if end - start >= 2:
            ranges.append(ShuffleRange(block.name, start, end))
        # Maximality: the next run may start anywhere after this run's start;
        # advancing to `end` keeps ranges disjoint, which is what the
        # mutation needs (a permutation target).
        start = end
    return ranges


def shufflable_ranges(function: Function) -> List[ShuffleRange]:
    ranges: List[ShuffleRange] = []
    for block in function.blocks:
        ranges.extend(shufflable_ranges_in_block(block))
    return ranges


def range_is_still_valid(block: BasicBlock, shuffle_range: ShuffleRange) -> bool:
    """Re-check a precomputed range against the (possibly mutated) block."""
    instructions = block.instructions
    if shuffle_range.end > len(instructions):
        return False
    selected = instructions[shuffle_range.start:shuffle_range.end]
    if any(isinstance(inst, PhiNode) or inst.is_terminator()
           for inst in selected):
        return False
    defined = {id(inst) for inst in selected}
    for inst in selected:
        for operand in inst.operands:
            if id(operand) in defined and operand is not inst:
                return False
    return True
