"""Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

The mutation engine's central primitive — "pick a dominating, type-compatible
SSA value for this program point" (paper §IV-F) — and the verifier's SSA
check are both built on this analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, PhiNode
from ..ir.values import Argument, Constant, Value
from .cfg import predecessor_map, reverse_postorder


class DominatorTree:
    """Immediate-dominator tree for the reachable part of a function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._idom: Dict[int, Optional[BasicBlock]] = {}
        self._rpo_index: Dict[int, int] = {}
        self._blocks: List[BasicBlock] = []
        self._compute()

    def _compute(self) -> None:
        order = reverse_postorder(self.function)
        self._blocks = order
        self._rpo_index = {id(block): i for i, block in enumerate(order)}
        if not order:
            return
        preds = predecessor_map(self.function)
        entry = order[0]
        idom: Dict[int, BasicBlock] = {id(entry): entry}
        changed = True
        while changed:
            changed = False
            for block in order[1:]:
                new_idom: Optional[BasicBlock] = None
                for pred in preds[id(block)]:
                    if id(pred) not in self._rpo_index:
                        continue  # unreachable predecessor
                    if id(pred) not in idom:
                        continue  # not processed yet this round
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        self._idom = {}
        for block in order:
            if block is entry:
                self._idom[id(block)] = None
            else:
                self._idom[id(block)] = idom.get(id(block))

    def _intersect(self, a: BasicBlock, b: BasicBlock,
                   idom: Dict[int, BasicBlock]) -> BasicBlock:
        index = self._rpo_index
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    # -- queries ---------------------------------------------------------------

    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._rpo_index

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self._idom.get(id(block))

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does block ``a`` dominate block ``b``?  (Reflexive.)"""
        if not self.is_reachable(a) or not self.is_reachable(b):
            return False
        runner: Optional[BasicBlock] = b
        while runner is not None:
            if runner is a:
                return True
            runner = self._idom.get(id(runner))
        return False

    def strictly_dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominates(self, definition: Value, point_block: BasicBlock,
                  point_index: int) -> bool:
        """Is ``definition`` available at instruction slot ``point_index`` of
        ``point_block``?

        Constants and arguments dominate everything.  An instruction
        dominates points strictly after it in its own block, and every point
        in blocks its block strictly dominates.
        """
        if isinstance(definition, (Constant, Argument)):
            return True
        if isinstance(definition, Instruction):
            def_block = definition.parent
            if def_block is None:
                return False
            if def_block is point_block:
                return def_block.index_of(definition) < point_index
            return self.strictly_dominates_block(def_block, point_block)
        return False

    def dominates_use(self, definition: Value, user: Instruction,
                      operand_index: int) -> bool:
        """SSA validity for one use: does the def dominate the use?

        Phi uses are checked at the end of the corresponding incoming block.
        """
        use_block = user.parent
        if use_block is None:
            return False
        if isinstance(user, PhiNode) and operand_index % 2 == 0:
            incoming_block = user.operands[operand_index + 1]
            if not isinstance(incoming_block, BasicBlock):
                return False
            return self.dominates(definition, incoming_block,
                                  len(incoming_block.instructions))
        return self.dominates(definition, use_block, use_block.index_of(user))

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return [b for b in self._blocks
                if self._idom.get(id(b)) is block]

    def dominance_depth(self, block: BasicBlock) -> int:
        depth = 0
        runner = self._idom.get(id(block))
        while runner is not None:
            depth += 1
            runner = self._idom.get(id(runner))
        return depth

    def blocks_in_rpo(self) -> List[BasicBlock]:
        return list(self._blocks)
