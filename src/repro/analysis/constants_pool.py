"""Literal-constant pool.

During preprocessing (paper §III-A) alive-mutate scans each function for the
literal constants appearing in its code; the arithmetic mutation later draws
replacement values from this pool (plus fresh random values), which keeps
mutants in the numeric neighborhood the original test was probing.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.function import Function
from ..ir.values import ConstantInt


class ConstantPool:
    """All literal integer constants of a function, grouped by bit width."""

    def __init__(self, function: Function) -> None:
        self._by_width: Dict[int, List[int]] = {}
        self._seen: Set[Tuple[int, int]] = set()
        for inst in function.instructions():
            for operand in inst.operands:
                if isinstance(operand, ConstantInt):
                    self._record(operand.type.width, operand.value)

    def _record(self, width: int, value: int) -> None:
        key = (width, value)
        if key in self._seen:
            return
        self._seen.add(key)
        self._by_width.setdefault(width, []).append(value)

    def values_for_width(self, width: int) -> List[int]:
        """Constants seen at this width, plus narrowable wider constants."""
        result = list(self._by_width.get(width, []))
        mask = (1 << width) - 1
        for other_width, values in self._by_width.items():
            if other_width != width:
                for value in values:
                    truncated = value & mask
                    if truncated not in result:
                        result.append(truncated)
        return result

    def all_values(self) -> List[Tuple[int, int]]:
        """(width, value) pairs in first-seen order."""
        return sorted(self._seen)

    def __len__(self) -> int:
        return len(self._seen)

    def __bool__(self) -> bool:
        return bool(self._seen)
