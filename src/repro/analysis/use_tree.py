"""SSA use trees and root-to-leaf paths (paper §IV-H, Figures 4 and 5).

The bitwidth-change mutation picks a *path* through a value's use tree —
rather than the whole tree — and re-creates just the instructions on that
path at a new width, truncating/extending at the frontier.  Only fully
bitwidth-polymorphic instructions are eligible to be on a path.
"""

from __future__ import annotations

from typing import List

from ..ir.function import Function
from ..ir.instructions import (BITWIDTH_POLYMORPHIC_OPCODES, BinaryOperator,
                               Instruction)
from ..ir.types import IntType
from ..ir.values import Value


def is_width_polymorphic(inst: Instruction) -> bool:
    """Can this instruction be re-created at any integer width?"""
    return (isinstance(inst, BinaryOperator)
            and inst.opcode in BITWIDTH_POLYMORPHIC_OPCODES
            and isinstance(inst.type, IntType))


def polymorphic_users(value: Value) -> List[Instruction]:
    """Width-polymorphic instructions that use ``value`` directly."""
    result = []
    seen = set()
    for use in value.uses:
        user = use.user
        if isinstance(user, Instruction) and is_width_polymorphic(user):
            if id(user) not in seen:
                seen.add(id(user))
                result.append(user)
    return result


def use_path_from(root: Instruction, choose) -> List[Instruction]:
    """A root-to-leaf path through width-polymorphic users.

    ``choose(candidates)`` picks the next hop (injected so the mutation
    engine can drive it from its seeded PRNG).  The path starts at ``root``
    and extends while some user of the current node is width-polymorphic,
    stopping at a leaf (a node none of whose users are eligible).
    """
    if not is_width_polymorphic(root):
        return []
    path = [root]
    on_path = {id(root)}
    current: Instruction = root
    while True:
        candidates = [user for user in polymorphic_users(current)
                      if id(user) not in on_path]
        if not candidates:
            return path
        nxt = choose(candidates)
        path.append(nxt)
        on_path.add(id(nxt))
        current = nxt


def width_change_roots(function: Function) -> List[Instruction]:
    """All instructions eligible as roots of a bitwidth-change path."""
    return [inst for inst in function.instructions()
            if is_width_polymorphic(inst)]
