"""Modules: ordered collections of functions, plus clone support.

``Module.clone()`` is the workhorse of the fuzzing loop (paper §III-B):
each iteration deep-copies the in-memory IR, mutates the copy, optimizes
it, verifies refinement, and throws the copy away.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from .basicblock import BasicBlock
from .function import Function
from .instructions import (BrInst, CallInst, Instruction, OperandBundle,
                           PhiNode, SwitchInst)
from .types import FunctionType
from .values import Value


class Module:
    """A translation unit holding named functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._functions: Dict[str, Function] = {}
        # Names of functions adopted from another module (copy-on-write
        # views); they must be treated as immutable and keep their
        # original parent.
        self._shared: Set[str] = set()

    # -- functions ----------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self._functions:
            raise ValueError(f"duplicate function @{function.name}")
        function.parent = self
        self._functions[function.name] = function
        return function

    def adopt_shared(self, function: Function) -> Function:
        """Insert ``function`` as an immutable copy-on-write view.

        Unlike :meth:`add_function` this does *not* re-parent: the
        function still belongs to its original module, and this module
        must never mutate it (mutation targets are deep-copied instead;
        see :meth:`clone`).
        """
        if function.name in self._functions:
            raise ValueError(f"duplicate function @{function.name}")
        self._functions[function.name] = function
        self._shared.add(function.name)
        return function

    def shared_names(self) -> Set[str]:
        """Names of functions shared (not owned) by this module."""
        return set(self._shared)

    def get_function(self, name: str) -> Optional[Function]:
        return self._functions.get(name)

    def remove_function(self, name: str) -> None:
        function = self._functions.pop(name, None)
        self._shared.discard(name)
        if function is not None and function.parent is self:
            function.parent = None

    def functions(self) -> List[Function]:
        return list(self._functions.values())

    def definitions(self) -> List[Function]:
        return [f for f in self._functions.values() if not f.is_declaration()]

    def declarations(self) -> List[Function]:
        return [f for f in self._functions.values() if f.is_declaration()]

    def get_or_insert_function(self, name: str,
                               function_type: FunctionType) -> Function:
        existing = self._functions.get(name)
        if existing is not None:
            return existing
        return Function(function_type, name, self)

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    # -- cloning --------------------------------------------------------------

    def clone(self, mutable_only: Optional[Set[str]] = None) -> "Module":
        """Deep-copy the module, remapping all intra-module references.

        With ``mutable_only`` (copy-on-write mode, paper §III-B), only
        the named definitions are deep-copied; every other function —
        declarations and definitions nobody will mutate — is shared with
        this module as an immutable view (:meth:`adopt_shared`).  Copied
        bodies keep referencing the shared objects directly, which is
        exactly how the originals linked to them.
        """
        cloned = Module(self.name)
        value_map: Dict[int, Value] = {}

        # Create all function shells first so calls can be remapped.
        copied: List[Function] = []
        for function in self._functions.values():
            if mutable_only is not None and (
                    function.is_declaration()
                    or function.name not in mutable_only):
                cloned.adopt_shared(function)
                continue
            shell = Function(function.function_type, function.name, cloned,
                             arg_names=[a.name for a in function.arguments])
            shell.attributes = function.attributes.copy()
            for old_arg, new_arg in zip(function.arguments, shell.arguments):
                new_arg.attributes = old_arg.attributes.copy()
                value_map[id(old_arg)] = new_arg
            value_map[id(function)] = shell
            copied.append(function)

        for function in copied:
            if function.is_declaration():
                continue
            _clone_function_body(function, value_map[id(function)], value_map)
        return cloned

    def __repr__(self) -> str:
        return f"<Module {self.name!r}: {len(self._functions)} functions>"


def clone_functions_into(sources: Dict[str, Function],
                         dest: Module) -> Dict[str, Function]:
    """Deep-copy functions from arbitrary modules into ``dest``.

    The memoized optimize stage assembles its output module from cached
    optimized bodies (living in old, retired modules) plus fresh mutant
    functions, so unlike :meth:`Module.clone` the sources here do not
    share one module.  Cross-function references are relinked *by name*
    (the dict key, which may differ from the source's own name — that is
    how a cached body is spliced in under a renamed twin): a referenced
    function resolves to ``dest``'s function of that name, with a
    declaration shell created on demand.  The same source object may
    appear under several keys.  Returns the new functions by name.
    """
    shells: Dict[str, Function] = {}
    arg_maps: Dict[str, Dict[int, Value]] = {}
    for name, function in sources.items():
        shell = Function(function.function_type, name, dest,
                         arg_names=[a.name for a in function.arguments])
        shell.attributes = function.attributes.copy()
        arg_map: Dict[int, Value] = {id(function): shell}
        for old_arg, new_arg in zip(function.arguments, shell.arguments):
            new_arg.attributes = old_arg.attributes.copy()
            arg_map[id(old_arg)] = new_arg
        shells[name] = shell
        arg_maps[name] = arg_map

    def resolve_function(function: Function) -> Function:
        existing = dest.get_function(function.name)
        if existing is not None:
            return existing
        declaration = Function(
            function.function_type, function.name, dest,
            arg_names=[a.name for a in function.arguments])
        declaration.attributes = function.attributes.copy()
        for old_arg, new_arg in zip(function.arguments,
                                    declaration.arguments):
            new_arg.attributes = old_arg.attributes.copy()
        return declaration

    # Each body is cloned with its own value map (never shared: the same
    # source object may be spliced under several names, and one global
    # map would cross-wire their arguments); references to *other*
    # functions resolve by name instead.
    for name, function in sources.items():
        if function.is_declaration():
            continue
        _clone_function_body(function, shells[name], arg_maps[name],
                             resolve_function)
    return shells


def _clone_function_body(source: Function, dest: Function,
                         value_map: Dict[int, Value],
                         resolve_function=None) -> None:
    """Clone blocks and instructions of ``source`` into the shell ``dest``.

    Cloning is two-pass: instructions are created first (possibly still
    pointing at originals, e.g. phi incoming values defined in later
    blocks), then every operand is remapped once the full map exists.
    ``resolve_function``, when given, maps function references that are
    not in ``value_map`` (cross-module splicing relinks those by name).
    """
    for block in source.blocks:
        new_block = BasicBlock(block.name, dest)
        value_map[id(block)] = new_block

    def remap(value: Value) -> Value:
        mapped = value_map.get(id(value))
        if mapped is not None:
            return mapped
        if resolve_function is not None and isinstance(value, Function):
            return resolve_function(value)
        return value

    cloned_instructions = []
    for block in source.blocks:
        new_block = value_map[id(block)]
        for inst in block.instructions:
            new_inst = _clone_instruction(inst, remap)
            new_inst.name = inst.name
            new_block.append(new_inst)
            value_map[id(inst)] = new_inst
            cloned_instructions.append(new_inst)

    for inst in cloned_instructions:
        for index, operand in enumerate(inst.operands):
            replacement = remap(operand)
            if replacement is not operand:
                inst.set_operand(index, replacement)
        if isinstance(inst, CallInst):
            inst.callee = remap(inst.callee)


def _clone_instruction(inst: Instruction, remap) -> Instruction:
    """Clone one instruction, remapping operands through ``remap``.

    Instructions are cloned with their original operands and then patched,
    because ``Instruction.clone`` captures operand identity.
    """
    if isinstance(inst, CallInst):
        cloned = CallInst(remap(inst.callee), [remap(a) for a in inst.args])
        for bundle in inst.bundles:
            cloned.add_bundle(OperandBundle(
                bundle.tag, [remap(v) for v in inst.bundle_operands(bundle)]))
        cloned.attributes = inst.attributes.copy()
        return cloned
    if isinstance(inst, PhiNode):
        cloned = PhiNode(inst.type)
        for value, block in inst.incoming():
            cloned.add_incoming(remap(value), remap(block))
        return cloned
    if isinstance(inst, BrInst):
        if inst.is_conditional():
            return BrInst(remap(inst.operands[0]), remap(inst.operands[1]),
                          remap(inst.operands[2]))
        return BrInst(remap(inst.operands[0]))
    if isinstance(inst, SwitchInst):
        return SwitchInst(remap(inst.value), remap(inst.default),
                          [(remap(v), remap(b)) for v, b in inst.cases()])
    cloned = inst.clone()
    for index, operand in enumerate(cloned.operands):
        replacement = remap(operand)
        if replacement is not operand:
            cloned.set_operand(index, replacement)
    return cloned
