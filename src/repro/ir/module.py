"""Modules: ordered collections of functions, plus clone support.

``Module.clone()`` is the workhorse of the fuzzing loop (paper §III-B):
each iteration deep-copies the in-memory IR, mutates the copy, optimizes
it, verifies refinement, and throws the copy away.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .basicblock import BasicBlock
from .function import Function
from .instructions import (BrInst, CallInst, Instruction, OperandBundle,
                           PhiNode, SwitchInst)
from .types import FunctionType
from .values import Value


class Module:
    """A translation unit holding named functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._functions: Dict[str, Function] = {}

    # -- functions ----------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self._functions:
            raise ValueError(f"duplicate function @{function.name}")
        function.parent = self
        self._functions[function.name] = function
        return function

    def get_function(self, name: str) -> Optional[Function]:
        return self._functions.get(name)

    def remove_function(self, name: str) -> None:
        function = self._functions.pop(name, None)
        if function is not None:
            function.parent = None

    def functions(self) -> List[Function]:
        return list(self._functions.values())

    def definitions(self) -> List[Function]:
        return [f for f in self._functions.values() if not f.is_declaration()]

    def declarations(self) -> List[Function]:
        return [f for f in self._functions.values() if f.is_declaration()]

    def get_or_insert_function(self, name: str,
                               function_type: FunctionType) -> Function:
        existing = self._functions.get(name)
        if existing is not None:
            return existing
        return Function(function_type, name, self)

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    # -- cloning --------------------------------------------------------------

    def clone(self) -> "Module":
        """Deep-copy the module, remapping all intra-module references."""
        cloned = Module(self.name)
        value_map: Dict[int, Value] = {}

        # Create all function shells first so calls can be remapped.
        for function in self._functions.values():
            shell = Function(function.function_type, function.name, cloned,
                             arg_names=[a.name for a in function.arguments])
            shell.attributes = function.attributes.copy()
            for old_arg, new_arg in zip(function.arguments, shell.arguments):
                new_arg.attributes = old_arg.attributes.copy()
                value_map[id(old_arg)] = new_arg
            value_map[id(function)] = shell

        for function in self._functions.values():
            if function.is_declaration():
                continue
            _clone_function_body(function, value_map[id(function)], value_map)
        return cloned

    def __repr__(self) -> str:
        return f"<Module {self.name!r}: {len(self._functions)} functions>"


def _clone_function_body(source: Function, dest: Function,
                         value_map: Dict[int, Value]) -> None:
    """Clone blocks and instructions of ``source`` into the shell ``dest``.

    Cloning is two-pass: instructions are created first (possibly still
    pointing at originals, e.g. phi incoming values defined in later
    blocks), then every operand is remapped once the full map exists.
    """
    for block in source.blocks:
        new_block = BasicBlock(block.name, dest)
        value_map[id(block)] = new_block

    def remap(value: Value) -> Value:
        return value_map.get(id(value), value)

    cloned_instructions = []
    for block in source.blocks:
        new_block = value_map[id(block)]
        for inst in block.instructions:
            new_inst = _clone_instruction(inst, remap)
            new_inst.name = inst.name
            new_block.append(new_inst)
            value_map[id(inst)] = new_inst
            cloned_instructions.append(new_inst)

    for inst in cloned_instructions:
        for index, operand in enumerate(inst.operands):
            replacement = remap(operand)
            if replacement is not operand:
                inst.set_operand(index, replacement)
        if isinstance(inst, CallInst):
            inst.callee = remap(inst.callee)


def _clone_instruction(inst: Instruction, remap) -> Instruction:
    """Clone one instruction, remapping operands through ``remap``.

    Instructions are cloned with their original operands and then patched,
    because ``Instruction.clone`` captures operand identity.
    """
    if isinstance(inst, CallInst):
        cloned = CallInst(remap(inst.callee), [remap(a) for a in inst.args])
        for bundle in inst.bundles:
            cloned.add_bundle(OperandBundle(
                bundle.tag, [remap(v) for v in inst.bundle_operands(bundle)]))
        cloned.attributes = inst.attributes.copy()
        return cloned
    if isinstance(inst, PhiNode):
        cloned = PhiNode(inst.type)
        for value, block in inst.incoming():
            cloned.add_incoming(remap(value), remap(block))
        return cloned
    if isinstance(inst, BrInst):
        if inst.is_conditional():
            return BrInst(remap(inst.operands[0]), remap(inst.operands[1]),
                          remap(inst.operands[2]))
        return BrInst(remap(inst.operands[0]))
    if isinstance(inst, SwitchInst):
        return SwitchInst(remap(inst.value), remap(inst.default),
                          [(remap(v), remap(b)) for v, b in inst.cases()])
    cloned = inst.clone()
    for index, operand in enumerate(cloned.operands):
        replacement = remap(operand)
        if replacement is not operand:
            cloned.set_operand(index, replacement)
    return cloned
