"""Functions: arguments, attribute sets, and a list of basic blocks."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from .attributes import AttributeSet
from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType, PtrType, Type
from .values import Argument, Constant

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module


class Function(Constant):
    """A function definition or declaration.

    Functions are pointer-typed constants (so they can appear as call
    targets and, in principle, as operands); their signature lives in
    ``function_type``.
    """

    __slots__ = ("function_type", "arguments", "blocks", "attributes",
                 "parent", "_next_temp")

    def __init__(self, function_type: FunctionType, name: str,
                 module: Optional["Module"] = None,
                 arg_names: Optional[List[str]] = None) -> None:
        super().__init__(PtrType())
        self.name = name
        self.function_type = function_type
        self.parent = module
        self.attributes = AttributeSet()
        self.blocks: List[BasicBlock] = []
        self.arguments: List[Argument] = []
        self._next_temp = 0
        for index, param_type in enumerate(function_type.param_types):
            arg_name = arg_names[index] if arg_names else ""
            self.arguments.append(Argument(param_type, arg_name, self, index))
        if module is not None:
            module.add_function(self)

    # -- signature -----------------------------------------------------------

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    def is_declaration(self) -> bool:
        return not self.blocks

    def num_args(self) -> int:
        return len(self.arguments)

    def add_argument(self, type: Type, name: str = "") -> Argument:
        """Append a fresh parameter (used by the use-mutation primitive)."""
        argument = Argument(type, name, self, len(self.arguments))
        self.arguments.append(argument)
        self.function_type = FunctionType(
            self.function_type.return_type,
            tuple(arg.type for arg in self.arguments),
            self.function_type.is_vararg,
        )
        return argument

    # -- blocks ---------------------------------------------------------------

    def append_block(self, block: BasicBlock) -> BasicBlock:
        block.parent = self
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        for i, existing in enumerate(self.blocks):
            if existing is block:
                del self.blocks[i]
                block.parent = None
                return
        raise ValueError("block not in function")

    def entry_block(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    def block_named(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    # -- traversal -------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def fingerprint(self) -> str:
        """Canonical structural hash (see :mod:`repro.ir.fingerprint`)."""
        from .fingerprint import fingerprint_function

        return fingerprint_function(self)

    # -- naming ------------------------------------------------------------------

    def next_temp_name(self) -> str:
        """A fresh numeric name distinct from any existing value name."""
        taken = {arg.name for arg in self.arguments}
        for block in self.blocks:
            taken.add(block.name)
            for inst in block.instructions:
                taken.add(inst.name)
        while True:
            candidate = str(self._next_temp)
            self._next_temp += 1
            if candidate not in taken:
                return candidate

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration() else "define"
        return f"<Function {kind} @{self.name}>"
