"""Textual printer producing LLVM-``.ll``-style output.

Output round-trips through :mod:`repro.ir.parser`, which the property tests
rely on (parse → print → parse must be structurally identical).
"""

from __future__ import annotations

from typing import Dict, List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (AllocaInst, BinaryOperator, BrInst, CallInst,
                           CastInst, FreezeInst, GEPInst, ICmpInst,
                           Instruction, LoadInst, PhiNode, RetInst,
                           SelectInst, StoreInst, SwitchInst,
                           UnreachableInst)
from .module import Module
from .values import (ConstantInt, ConstantPointerNull, PoisonValue, UndefValue,
                     Value)


def print_module(module: Module) -> str:
    chunks: List[str] = []
    for function in module.declarations():
        chunks.append(print_declaration(function))
    for function in module.definitions():
        chunks.append(print_function(function))
    return "\n\n".join(chunks) + "\n"


def print_declaration(function: Function) -> str:
    params = ", ".join(str(t) for t in function.function_type.param_types)
    attrs = f" {function.attributes}" if function.attributes else ""
    return f"declare {function.return_type} @{function.name}({params}){attrs}"


def print_function(function: Function) -> str:
    namer = _Namer(function)
    params = []
    for arg in function.arguments:
        attr_str = f" {arg.attributes}" if arg.attributes else ""
        params.append(f"{arg.type}{attr_str} %{namer.name_of(arg)}")
    header = (f"define {function.return_type} @{function.name}"
              f"({', '.join(params)})")
    if function.attributes:
        header += f" {function.attributes}"
    lines = [header + " {"]
    for i, block in enumerate(function.blocks):
        if i > 0:
            lines.append("")
        label = namer.block_label(block)
        if i > 0 or label != "entry" or block.has_uses():
            lines.append(f"{label}:")
        for inst in block.instructions:
            lines.append("  " + print_instruction(inst, namer))
    lines.append("}")
    return "\n".join(lines)


def format_value(value: Value, namer: "_Namer") -> str:
    """The operand form of a value, without its type."""
    if isinstance(value, ConstantInt):
        if value.type.width == 1:
            return "true" if value.value else "false"
        return str(value.signed_value())
    if isinstance(value, UndefValue):
        return "undef"
    if isinstance(value, PoisonValue):
        return "poison"
    if isinstance(value, ConstantPointerNull):
        return "null"
    if isinstance(value, Function):
        return f"@{value.name}"
    if isinstance(value, BasicBlock):
        return f"%{namer.block_label(value)}"
    return f"%{namer.name_of(value)}"


def format_typed(value: Value, namer: "_Namer") -> str:
    if isinstance(value, BasicBlock):
        return f"label %{namer.block_label(value)}"
    return f"{value.type} {format_value(value, namer)}"


def print_instruction(inst: Instruction, namer: "_Namer") -> str:
    result = ""
    if not inst.type.is_void():
        result = f"%{namer.name_of(inst)} = "

    if isinstance(inst, BinaryOperator):
        return (f"{result}{inst.opcode} {inst.flags_repr()}{inst.type} "
                f"{format_value(inst.lhs, namer)}, {format_value(inst.rhs, namer)}")
    if isinstance(inst, ICmpInst):
        return (f"{result}icmp {inst.predicate} {inst.lhs.type} "
                f"{format_value(inst.lhs, namer)}, {format_value(inst.rhs, namer)}")
    if isinstance(inst, SelectInst):
        return (f"{result}select {format_typed(inst.condition, namer)}, "
                f"{format_typed(inst.true_value, namer)}, "
                f"{format_typed(inst.false_value, namer)}")
    if isinstance(inst, CastInst):
        return (f"{result}{inst.opcode} {format_typed(inst.value, namer)} "
                f"to {inst.type}")
    if isinstance(inst, FreezeInst):
        return f"{result}freeze {format_typed(inst.value, namer)}"
    if isinstance(inst, AllocaInst):
        align = f", align {inst.align}" if inst.align else ""
        return f"{result}alloca {inst.allocated_type}{align}"
    if isinstance(inst, LoadInst):
        align = f", align {inst.align}" if inst.align else ""
        return (f"{result}load {inst.type}, "
                f"{format_typed(inst.pointer, namer)}{align}")
    if isinstance(inst, StoreInst):
        align = f", align {inst.align}" if inst.align else ""
        return (f"store {format_typed(inst.value, namer)}, "
                f"{format_typed(inst.pointer, namer)}{align}")
    if isinstance(inst, GEPInst):
        indices = ", ".join(format_typed(i, namer) for i in inst.indices)
        return (f"{result}getelementptr {inst.flags_repr()}{inst.source_type}, "
                f"{format_typed(inst.pointer, namer)}, {indices}")
    if isinstance(inst, CallInst):
        args = ", ".join(format_typed(a, namer) for a in inst.args)
        text = f"call {inst.callee.return_type} @{inst.callee.name}({args})"
        if inst.bundles:
            rendered = []
            for bundle in inst.bundles:
                inputs = ", ".join(format_typed(v, namer)
                                   for v in inst.bundle_operands(bundle))
                rendered.append(f'"{bundle.tag}"({inputs})')
            text += f" [ {', '.join(rendered)} ]"
        return result + text
    if isinstance(inst, RetInst):
        if inst.return_value is None:
            return "ret void"
        return f"ret {format_typed(inst.return_value, namer)}"
    if isinstance(inst, BrInst):
        if inst.is_conditional():
            return (f"br {format_typed(inst.condition, namer)}, "
                    f"{format_typed(inst.operands[1], namer)}, "
                    f"{format_typed(inst.operands[2], namer)}")
        return f"br {format_typed(inst.operands[0], namer)}"
    if isinstance(inst, SwitchInst):
        cases = " ".join(
            f"{format_typed(v, namer)}, {format_typed(b, namer)}"
            for v, b in inst.cases())
        return (f"switch {format_typed(inst.value, namer)}, "
                f"{format_typed(inst.default, namer)} [ {cases} ]")
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, PhiNode):
        incoming = ", ".join(
            f"[ {format_value(v, namer)}, %{namer.block_label(b)} ]"
            for v, b in inst.incoming())
        return f"{result}phi {inst.type} {incoming}"
    raise ValueError(f"cannot print instruction: {inst!r}")


class _Namer:
    """Assigns display names; unnamed values get sequential %N slots."""

    def __init__(self, function: Function) -> None:
        self._names: Dict[int, str] = {}
        counter = 0
        taken = set()
        for arg in function.arguments:
            if arg.name:
                taken.add(arg.name)
        for block in function.blocks:
            if block.name:
                taken.add(block.name)
            for inst in block.instructions:
                if inst.name:
                    taken.add(inst.name)

        def fresh() -> str:
            nonlocal counter
            while str(counter) in taken:
                counter += 1
            name = str(counter)
            counter += 1
            return name

        for arg in function.arguments:
            self._names[id(arg)] = arg.name or fresh()
        for index, block in enumerate(function.blocks):
            if block.name:
                self._names[id(block)] = block.name
            elif index == 0:
                self._names[id(block)] = "entry" if "entry" not in taken else fresh()
            else:
                self._names[id(block)] = fresh()
            for inst in block.instructions:
                if inst.type.is_void():
                    continue
                self._names[id(inst)] = inst.name or fresh()

    def name_of(self, value: Value) -> str:
        name = self._names.get(id(value))
        if name is None:
            # Value from outside the function (shouldn't happen in valid IR).
            return value.name or f"?{id(value) & 0xffff:x}"
        return name

    def block_label(self, block: BasicBlock) -> str:
        return self.name_of(block)
