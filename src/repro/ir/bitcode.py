"""A compact binary module format (the "bitcode" analog).

The paper's tool accepts IR "in either the human-readable text format or
the compact binary bitcode format" (§III-A).  This codec provides the
binary side: a varint-based, self-contained encoding of a module that
round-trips exactly through :func:`write_bitcode` / :func:`read_bitcode`.

Layout (all integers are unsigned LEB128 varints unless noted):

    magic "RBC1"
    string table:   count, then length-prefixed UTF-8 strings
    type table:     count, then records (kind tag + payload)
    function count, then per function:
        name, type index, flags(definition?), function attrs,
        per-arg (name, attrs)
        block count, then per block: name, instruction count,
            instruction records

Values inside a function are numbered: arguments first, then basic
blocks, then instructions in order; operands reference those numbers.
Constants are encoded inline in the operand stream.  Forward references
(phis, branches) work because decoding materializes instruction and
block shells before patching operands.
"""

from __future__ import annotations

import io
from typing import Dict, List, Tuple

from .attributes import Attribute, AttributeSet
from .basicblock import BasicBlock
from .function import Function
from .instructions import (AllocaInst, BINARY_OPCODES, BinaryOperator,
                           BrInst, CAST_OPCODES, CallInst, CastInst,
                           FreezeInst, GEPInst, ICMP_PREDICATES, ICmpInst,
                           Instruction, LoadInst, OperandBundle, PhiNode,
                           RetInst, SelectInst, StoreInst, SwitchInst,
                           UnreachableInst)
from .module import Module
from .types import (FunctionType, IntType, LabelType, PtrType, Type,
                    VoidType)
from .values import (ConstantInt, ConstantPointerNull, PoisonValue, UndefValue,
                     Value)

MAGIC = b"RBC1"


class BitcodeError(Exception):
    """Malformed binary module data."""


# -- varint primitives --------------------------------------------------------


def _write_varint(out: io.BytesIO, value: int) -> None:
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: io.BytesIO) -> int:
    result = 0
    shift = 0
    while True:
        chunk = data.read(1)
        if not chunk:
            raise BitcodeError("truncated varint")
        byte = chunk[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 200:
            raise BitcodeError("varint too long")


def _write_str(out: io.BytesIO, text: str) -> None:
    encoded = text.encode()
    _write_varint(out, len(encoded))
    out.write(encoded)


def _read_str(data: io.BytesIO) -> str:
    length = _read_varint(data)
    raw = data.read(length)
    if len(raw) != length:
        raise BitcodeError("truncated string")
    return raw.decode()


# -- type table -----------------------------------------------------------------

_TYPE_VOID, _TYPE_INT, _TYPE_PTR, _TYPE_LABEL, _TYPE_FUNCTION = range(5)


class _TypeTable:
    def __init__(self) -> None:
        self.types: List[Type] = []
        self._index: Dict[Type, int] = {}

    def intern(self, type: Type) -> int:
        existing = self._index.get(type)
        if existing is not None:
            return existing
        if isinstance(type, FunctionType):
            # Intern components first so decoding sees them earlier.
            self.intern(type.return_type)
            for param in type.param_types:
                self.intern(param)
        index = len(self.types)
        self.types.append(type)
        self._index[type] = index
        return index

    def write(self, out: io.BytesIO) -> None:
        _write_varint(out, len(self.types))
        for type in self.types:
            if isinstance(type, VoidType):
                _write_varint(out, _TYPE_VOID)
            elif isinstance(type, IntType):
                _write_varint(out, _TYPE_INT)
                _write_varint(out, type.width)
            elif isinstance(type, PtrType):
                _write_varint(out, _TYPE_PTR)
            elif isinstance(type, LabelType):
                _write_varint(out, _TYPE_LABEL)
            elif isinstance(type, FunctionType):
                _write_varint(out, _TYPE_FUNCTION)
                _write_varint(out, self._index[type.return_type])
                _write_varint(out, len(type.param_types))
                for param in type.param_types:
                    _write_varint(out, self._index[param])
                _write_varint(out, int(type.is_vararg))
            else:
                raise BitcodeError(f"cannot encode type {type}")

    @classmethod
    def read(cls, data: io.BytesIO) -> List[Type]:
        count = _read_varint(data)
        types: List[Type] = []
        for _ in range(count):
            kind = _read_varint(data)
            if kind == _TYPE_VOID:
                types.append(VoidType())
            elif kind == _TYPE_INT:
                types.append(IntType(_read_varint(data)))
            elif kind == _TYPE_PTR:
                types.append(PtrType())
            elif kind == _TYPE_LABEL:
                types.append(LabelType())
            elif kind == _TYPE_FUNCTION:
                return_type = types[_read_varint(data)]
                params = tuple(types[_read_varint(data)]
                               for _ in range(_read_varint(data)))
                vararg = bool(_read_varint(data))
                types.append(FunctionType(return_type, params, vararg))
            else:
                raise BitcodeError(f"unknown type tag {kind}")
        return types


# -- attributes -------------------------------------------------------------------


def _write_attrs(out: io.BytesIO, attrs: AttributeSet) -> None:
    items = list(attrs)
    _write_varint(out, len(items))
    for attr in items:
        _write_str(out, attr.name)
        if attr.value is None:
            _write_varint(out, 0)
        else:
            _write_varint(out, 1)
            _write_varint(out, attr.value)


def _read_attrs(data: io.BytesIO) -> AttributeSet:
    attrs = AttributeSet()
    for _ in range(_read_varint(data)):
        name = _read_str(data)
        if _read_varint(data):
            attrs.add(Attribute(name, _read_varint(data)))
        else:
            attrs.add(Attribute(name))
    return attrs


# -- operand encoding ----------------------------------------------------------------

_OP_VALUE, _OP_CONST_INT, _OP_UNDEF, _OP_POISON, _OP_NULL, _OP_GLOBAL = range(6)


class _FunctionEncoder:
    def __init__(self, function: Function, types: _TypeTable,
                 global_index: Dict[int, int]) -> None:
        self.function = function
        self.types = types
        self.global_index = global_index
        self.value_index: Dict[int, int] = {}
        counter = 0
        for argument in function.arguments:
            self.value_index[id(argument)] = counter
            counter += 1
        for block in function.blocks:
            self.value_index[id(block)] = counter
            counter += 1
        for block in function.blocks:
            for inst in block.instructions:
                self.value_index[id(inst)] = counter
                counter += 1

    def write_operand(self, out: io.BytesIO, value: Value) -> None:
        local = self.value_index.get(id(value))
        if local is not None:
            _write_varint(out, _OP_VALUE)
            _write_varint(out, local)
            return
        if isinstance(value, ConstantInt):
            _write_varint(out, _OP_CONST_INT)
            _write_varint(out, self.types.intern(value.type))
            _write_varint(out, value.value)
            return
        if isinstance(value, UndefValue):
            _write_varint(out, _OP_UNDEF)
            _write_varint(out, self.types.intern(value.type))
            return
        if isinstance(value, PoisonValue):
            _write_varint(out, _OP_POISON)
            _write_varint(out, self.types.intern(value.type))
            return
        if isinstance(value, ConstantPointerNull):
            _write_varint(out, _OP_NULL)
            return
        if isinstance(value, Function):
            _write_varint(out, _OP_GLOBAL)
            _write_varint(out, self.global_index[id(value)])
            return
        raise BitcodeError(f"cannot encode operand {value!r}")


# Instruction kind tags.
(_I_BINOP, _I_ICMP, _I_SELECT, _I_CAST, _I_FREEZE, _I_ALLOCA, _I_LOAD,
 _I_STORE, _I_GEP, _I_CALL, _I_RET, _I_BR, _I_SWITCH, _I_UNREACHABLE,
 _I_PHI) = range(15)


def _write_instruction(out: io.BytesIO, inst: Instruction,
                       enc: _FunctionEncoder) -> None:
    _write_str(out, inst.name)
    if isinstance(inst, BinaryOperator):
        _write_varint(out, _I_BINOP)
        _write_varint(out, BINARY_OPCODES.index(inst.opcode))
        flags = (inst.nuw << 0) | (inst.nsw << 1) | (inst.exact << 2)
        _write_varint(out, flags)
        _write_varint(out, enc.types.intern(inst.type))
        enc.write_operand(out, inst.lhs)
        enc.write_operand(out, inst.rhs)
    elif isinstance(inst, ICmpInst):
        _write_varint(out, _I_ICMP)
        _write_varint(out, ICMP_PREDICATES.index(inst.predicate))
        enc.write_operand(out, inst.lhs)
        enc.write_operand(out, inst.rhs)
    elif isinstance(inst, SelectInst):
        _write_varint(out, _I_SELECT)
        for operand in inst.operands:
            enc.write_operand(out, operand)
    elif isinstance(inst, CastInst):
        _write_varint(out, _I_CAST)
        _write_varint(out, CAST_OPCODES.index(inst.opcode))
        _write_varint(out, enc.types.intern(inst.type))
        enc.write_operand(out, inst.value)
    elif isinstance(inst, FreezeInst):
        _write_varint(out, _I_FREEZE)
        enc.write_operand(out, inst.value)
    elif isinstance(inst, AllocaInst):
        _write_varint(out, _I_ALLOCA)
        _write_varint(out, enc.types.intern(inst.allocated_type))
        _write_varint(out, inst.align)
    elif isinstance(inst, LoadInst):
        _write_varint(out, _I_LOAD)
        _write_varint(out, enc.types.intern(inst.type))
        _write_varint(out, inst.align)
        enc.write_operand(out, inst.pointer)
    elif isinstance(inst, StoreInst):
        _write_varint(out, _I_STORE)
        _write_varint(out, inst.align)
        enc.write_operand(out, inst.value)
        enc.write_operand(out, inst.pointer)
    elif isinstance(inst, GEPInst):
        _write_varint(out, _I_GEP)
        _write_varint(out, enc.types.intern(inst.source_type))
        _write_varint(out, int(inst.inbounds))
        _write_varint(out, len(inst.indices))
        enc.write_operand(out, inst.pointer)
        for index in inst.indices:
            enc.write_operand(out, index)
    elif isinstance(inst, CallInst):
        _write_varint(out, _I_CALL)
        _write_varint(out, enc.global_index[id(inst.callee)])
        args = inst.args
        _write_varint(out, len(args))
        for arg in args:
            enc.write_operand(out, arg)
        _write_varint(out, len(inst.bundles))
        for bundle in inst.bundles:
            _write_str(out, bundle.tag)
            operands = inst.bundle_operands(bundle)
            _write_varint(out, len(operands))
            for operand in operands:
                enc.write_operand(out, operand)
    elif isinstance(inst, RetInst):
        _write_varint(out, _I_RET)
        if inst.return_value is None:
            _write_varint(out, 0)
        else:
            _write_varint(out, 1)
            enc.write_operand(out, inst.return_value)
    elif isinstance(inst, BrInst):
        _write_varint(out, _I_BR)
        _write_varint(out, int(inst.is_conditional()))
        for operand in inst.operands:
            enc.write_operand(out, operand)
    elif isinstance(inst, SwitchInst):
        _write_varint(out, _I_SWITCH)
        cases = inst.cases()
        _write_varint(out, len(cases))
        enc.write_operand(out, inst.value)
        enc.write_operand(out, inst.default)
        for case_value, case_block in cases:
            enc.write_operand(out, case_value)
            enc.write_operand(out, case_block)
    elif isinstance(inst, UnreachableInst):
        _write_varint(out, _I_UNREACHABLE)
    elif isinstance(inst, PhiNode):
        _write_varint(out, _I_PHI)
        _write_varint(out, enc.types.intern(inst.type))
        incoming = inst.incoming()
        _write_varint(out, len(incoming))
        for value, block in incoming:
            enc.write_operand(out, value)
            enc.write_operand(out, block)
    else:
        raise BitcodeError(f"cannot encode instruction {inst!r}")


# -- top level ----------------------------------------------------------------------


def write_bitcode(module: Module) -> bytes:
    """Serialize a module to the compact binary format."""
    out = io.BytesIO()
    out.write(MAGIC)
    _write_str(out, module.name)

    types = _TypeTable()
    functions = module.functions()
    global_index = {id(fn): i for i, fn in enumerate(functions)}

    body = io.BytesIO()
    _write_varint(body, len(functions))
    for function in functions:
        _write_str(body, function.name)
        _write_varint(body, types.intern(function.function_type))
        _write_varint(body, int(not function.is_declaration()))
        _write_attrs(body, function.attributes)
        for argument in function.arguments:
            _write_str(body, argument.name)
            _write_attrs(body, argument.attributes)
        if function.is_declaration():
            continue
        enc = _FunctionEncoder(function, types, global_index)
        _write_varint(body, len(function.blocks))
        for block in function.blocks:
            _write_str(body, block.name)
            _write_varint(body, len(block.instructions))
            for inst in block.instructions:
                _write_instruction(body, inst, enc)

    # Types are written after the body is encoded (interning fills the
    # table), but appear before it in the stream.
    types.write(out)
    out.write(body.getvalue())
    return out.getvalue()


def read_bitcode(data: bytes) -> Module:
    """Deserialize a module produced by :func:`write_bitcode`."""
    stream = io.BytesIO(data)
    if stream.read(4) != MAGIC:
        raise BitcodeError("bad magic")
    module = Module(_read_str(stream))
    types = _TypeTable.read(stream)

    function_count = _read_varint(stream)
    # Pass 1 requires function shells before bodies reference them, so
    # decode lazily: read everything per function but delay operand
    # patching until all functions exist.
    pending: List[Tuple[Function, List]] = []
    for _ in range(function_count):
        name = _read_str(stream)
        function_type = types[_read_varint(stream)]
        is_definition = bool(_read_varint(stream))
        function = Function(function_type, name, module)
        function.attributes = _read_attrs(stream)
        for argument in function.arguments:
            argument.name = _read_str(stream)
            argument.attributes = _read_attrs(stream)
        if not is_definition:
            continue
        block_records = []
        for _ in range(_read_varint(stream)):
            block_name = _read_str(stream)
            instructions = []
            for _ in range(_read_varint(stream)):
                instructions.append(_read_instruction_record(stream, types))
            block_records.append((block_name, instructions))
        pending.append((function, block_records))

    functions = module.functions()
    for function, block_records in pending:
        _materialize_body(function, block_records, functions, types)
    return module


def _read_operand_record(stream: io.BytesIO, types: List[Type]):
    kind = _read_varint(stream)
    if kind == _OP_VALUE:
        return ("value", _read_varint(stream))
    if kind == _OP_CONST_INT:
        type = types[_read_varint(stream)]
        return ("const", type, _read_varint(stream))
    if kind == _OP_UNDEF:
        return ("undef", types[_read_varint(stream)])
    if kind == _OP_POISON:
        return ("poison", types[_read_varint(stream)])
    if kind == _OP_NULL:
        return ("null",)
    if kind == _OP_GLOBAL:
        return ("global", _read_varint(stream))
    raise BitcodeError(f"unknown operand tag {kind}")


def _read_instruction_record(stream: io.BytesIO, types: List[Type]):
    name = _read_str(stream)
    kind = _read_varint(stream)
    def operand():
        return _read_operand_record(stream, types)
    if kind == _I_BINOP:
        opcode = BINARY_OPCODES[_read_varint(stream)]
        flags = _read_varint(stream)
        type = types[_read_varint(stream)]
        return (name, kind, opcode, flags, type, operand(), operand())
    if kind == _I_ICMP:
        predicate = ICMP_PREDICATES[_read_varint(stream)]
        return (name, kind, predicate, operand(), operand())
    if kind == _I_SELECT:
        return (name, kind, operand(), operand(), operand())
    if kind == _I_CAST:
        opcode = CAST_OPCODES[_read_varint(stream)]
        type = types[_read_varint(stream)]
        return (name, kind, opcode, type, operand())
    if kind == _I_FREEZE:
        return (name, kind, operand())
    if kind == _I_ALLOCA:
        return (name, kind, types[_read_varint(stream)],
                _read_varint(stream))
    if kind == _I_LOAD:
        return (name, kind, types[_read_varint(stream)],
                _read_varint(stream), operand())
    if kind == _I_STORE:
        return (name, kind, _read_varint(stream), operand(), operand())
    if kind == _I_GEP:
        source_type = types[_read_varint(stream)]
        inbounds = bool(_read_varint(stream))
        index_count = _read_varint(stream)
        pointer = operand()
        indices = [operand() for _ in range(index_count)]
        return (name, kind, source_type, inbounds, pointer, indices)
    if kind == _I_CALL:
        callee = _read_varint(stream)
        args = [operand() for _ in range(_read_varint(stream))]
        bundles = []
        for _ in range(_read_varint(stream)):
            tag = _read_str(stream)
            inputs = [operand() for _ in range(_read_varint(stream))]
            bundles.append((tag, inputs))
        return (name, kind, callee, args, bundles)
    if kind == _I_RET:
        if _read_varint(stream):
            return (name, kind, operand())
        return (name, kind, None)
    if kind == _I_BR:
        conditional = _read_varint(stream)
        operands = [operand() for _ in range(3 if conditional else 1)]
        return (name, kind, conditional, operands)
    if kind == _I_SWITCH:
        case_count = _read_varint(stream)
        value = operand()
        default = operand()
        cases = [(operand(), operand()) for _ in range(case_count)]
        return (name, kind, value, default, cases)
    if kind == _I_UNREACHABLE:
        return (name, kind)
    if kind == _I_PHI:
        type = types[_read_varint(stream)]
        incoming = [(operand(), operand())
                    for _ in range(_read_varint(stream))]
        return (name, kind, type, incoming)
    raise BitcodeError(f"unknown instruction tag {kind}")


def _materialize_body(function: Function, block_records, functions,
                      types) -> None:
    values: List[Value] = list(function.arguments)
    blocks: List[BasicBlock] = []
    for block_name, _ in block_records:
        block = BasicBlock(block_name, function)
        blocks.append(block)
        values.append(block)

    def resolve(record):
        tag = record[0]
        if tag == "value":
            return values[record[1]]
        if tag == "const":
            return ConstantInt(record[1], record[2])
        if tag == "undef":
            return UndefValue(record[1])
        if tag == "poison":
            return PoisonValue(record[1])
        if tag == "null":
            return ConstantPointerNull()
        if tag == "global":
            return functions[record[1]]
        raise BitcodeError(f"bad operand record {record}")

    # Two passes: shells first (so forward value references resolve),
    # then operand patching.  Shells are created with safe placeholder
    # operands of the right types.
    pending_patch = []
    for (block_name, records), block in zip(block_records, blocks):
        for record in records:
            inst = _decode_shell(record, resolve)
            inst.name = record[0]
            block.append(inst)
            values.append(inst)
            pending_patch.append((inst, record))

    for inst, record in pending_patch:
        _patch_operands(inst, record, resolve)


def _decode_shell(record, resolve) -> Instruction:
    kind = record[1]
    if kind == _I_BINOP:
        _, _, opcode, flags, type, lhs, rhs = record
        placeholder = UndefValue(type)
        return BinaryOperator(opcode, placeholder, placeholder,
                              nuw=bool(flags & 1), nsw=bool(flags & 2),
                              exact=bool(flags & 4))
    if kind == _I_ICMP:
        # The compare operands' type comes from the operand records.
        placeholder = UndefValue(_operand_type(record[3], resolve))
        return ICmpInst(record[2], placeholder, placeholder)
    if kind == _I_SELECT:
        value_type = _operand_type(record[3], resolve)
        cond = UndefValue(IntType(1))
        placeholder = UndefValue(value_type)
        return SelectInst(cond, placeholder, placeholder)
    if kind == _I_CAST:
        _, _, opcode, type, value = record
        return CastInst(opcode, UndefValue(_operand_type(value, resolve)),
                        type)
    if kind == _I_FREEZE:
        return FreezeInst(UndefValue(_operand_type(record[2], resolve)))
    if kind == _I_ALLOCA:
        return AllocaInst(record[2], align=record[3])
    if kind == _I_LOAD:
        return LoadInst(record[2], UndefValue(PtrType()), align=record[3])
    if kind == _I_STORE:
        return StoreInst(UndefValue(_operand_type(record[3], resolve)),
                         UndefValue(PtrType()), align=record[2])
    if kind == _I_GEP:
        _, _, source_type, inbounds, pointer, indices = record
        placeholders = [UndefValue(_operand_type(i, resolve))
                        for i in indices]
        return GEPInst(source_type, UndefValue(PtrType()), placeholders,
                       inbounds=inbounds)
    if kind == _I_CALL:
        _, _, callee_index, args, bundles = record
        callee = resolve(("global", callee_index))
        arg_placeholders = [UndefValue(t) for t in
                            callee.function_type.param_types]
        call = CallInst(callee, arg_placeholders)
        for tag, inputs in bundles:
            call.add_bundle(OperandBundle(
                tag, [UndefValue(_operand_type(i, resolve))
                      for i in inputs]))
        return call
    if kind == _I_RET:
        if record[2] is None:
            return RetInst()
        return RetInst(UndefValue(_operand_type(record[2], resolve)))
    if kind == _I_BR:
        _, _, conditional, operands = record
        dummy = BasicBlock("")
        if conditional:
            return BrInst(UndefValue(IntType(1)), dummy, dummy)
        return BrInst(dummy)
    if kind == _I_SWITCH:
        _, _, value, default, cases = record
        dummy = BasicBlock("")
        value_type = _operand_type(value, resolve)
        return SwitchInst(UndefValue(value_type), dummy,
                          [(ConstantInt(value_type, 0), dummy)
                           for _ in cases])
    if kind == _I_UNREACHABLE:
        return UnreachableInst()
    if kind == _I_PHI:
        _, _, type, incoming = record
        dummy = BasicBlock("")
        phi = PhiNode(type)
        for _ in incoming:
            phi.add_incoming(UndefValue(type), dummy)
        return phi
    raise BitcodeError(f"bad record {record}")


def _operand_type(record, resolve) -> Type:
    """The type of an operand record, resolving value refs if needed."""
    tag = record[0]
    if tag in ("const", "undef", "poison"):
        return record[1]
    if tag == "null":
        return PtrType()
    return resolve(record).type


def _patch_operands(inst: Instruction, record, resolve) -> None:
    kind = record[1]
    if kind == _I_BINOP:
        inst.set_operand(0, resolve(record[5]))
        inst.set_operand(1, resolve(record[6]))
    elif kind == _I_ICMP:
        inst.set_operand(0, resolve(record[3]))
        inst.set_operand(1, resolve(record[4]))
    elif kind == _I_SELECT:
        for i in range(3):
            inst.set_operand(i, resolve(record[2 + i]))
    elif kind in (_I_CAST, _I_FREEZE):
        inst.set_operand(0, resolve(record[4] if kind == _I_CAST
                                    else record[2]))
    elif kind == _I_LOAD:
        inst.set_operand(0, resolve(record[4]))
    elif kind == _I_STORE:
        inst.set_operand(0, resolve(record[3]))
        inst.set_operand(1, resolve(record[4]))
    elif kind == _I_GEP:
        inst.set_operand(0, resolve(record[4]))
        for i, index_record in enumerate(record[5]):
            inst.set_operand(1 + i, resolve(index_record))
    elif kind == _I_CALL:
        _, _, _, args, bundles = record
        position = 0
        for arg_record in args:
            inst.set_operand(position, resolve(arg_record))
            position += 1
        for _, inputs in bundles:
            for input_record in inputs:
                inst.set_operand(position, resolve(input_record))
                position += 1
    elif kind == _I_RET:
        if record[2] is not None:
            inst.set_operand(0, resolve(record[2]))
    elif kind == _I_BR:
        for i, operand_record in enumerate(record[3]):
            inst.set_operand(i, resolve(operand_record))
    elif kind == _I_SWITCH:
        _, _, value, default, cases = record
        inst.set_operand(0, resolve(value))
        inst.set_operand(1, resolve(default))
        for i, (case_value, case_block) in enumerate(cases):
            inst.set_operand(2 + 2 * i, resolve(case_value))
            inst.set_operand(3 + 2 * i, resolve(case_block))
    elif kind == _I_PHI:
        _, _, _, incoming = record
        for i, (value_record, block_record) in enumerate(incoming):
            inst.set_operand(2 * i, resolve(value_record))
            inst.set_operand(2 * i + 1, resolve(block_record))


def load_module_file(path: str) -> Module:
    """Load a module from either textual (.ll) or binary (.bc) form,
    sniffing the magic bytes like the paper's tool (§III-A)."""
    with open(path, "rb") as stream:
        raw = stream.read()
    if raw[:4] == MAGIC:
        return read_bitcode(raw)
    from .parser import parse_module

    return parse_module(raw.decode(), path)
