"""Basic blocks: ordered instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from .instructions import Instruction, PhiNode, terminator_successors
from .types import LabelType
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class BasicBlock(Value):
    """A basic block.  Blocks are label-typed values so branches and phis
    can reference them through ordinary use lists."""

    __slots__ = ("parent", "instructions")

    def __init__(self, name: str = "", parent: Optional["Function"] = None) -> None:
        super().__init__(LabelType(), name)
        self.parent = parent
        self.instructions: List[Instruction] = []
        if parent is not None:
            parent.append_block(self)

    # -- structure ----------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.index_of(anchor), inst)

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.index_of(anchor) + 1, inst)

    def remove(self, inst: Instruction) -> None:
        for i, existing in enumerate(self.instructions):
            if existing is inst:
                del self.instructions[i]
                inst.parent = None
                return
        raise ValueError("instruction not in block")

    def index_of(self, inst: Instruction) -> int:
        for i, existing in enumerate(self.instructions):
            if existing is inst:
                return i
        raise ValueError("instruction not in block")

    # -- queries -------------------------------------------------------------

    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        terminator = self.terminator()
        if terminator is None:
            return []
        return terminator_successors(terminator)

    def predecessors(self) -> List["BasicBlock"]:
        """Blocks that branch here, via this block's label use list."""
        preds = []
        seen = set()
        for use in self.uses:
            user = use.user
            if isinstance(user, Instruction) and user.is_terminator():
                block = user.parent
                if block is not None and id(block) not in seen:
                    seen.add(id(block))
                    preds.append(block)
        return preds

    def phis(self) -> List[PhiNode]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiNode):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiNode):
                return i
        return len(self.instructions)

    def is_entry(self) -> bool:
        return self.parent is not None and self.parent.entry_block() is self

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock(%{self.name}, {len(self.instructions)} insts)"
