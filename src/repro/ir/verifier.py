"""IR verifier: structural, type, and SSA-dominance checks.

The mutation engine's core guarantee — mutants are valid IR 100% of the
time (paper §II) — is checked against this verifier in the test suite.
"""

from __future__ import annotations

from typing import List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (BinaryOperator, BrInst, CallInst, CastInst,
                           EXACT_FLAG_OPCODES, GEPInst, ICmpInst, Instruction,
                           LoadInst, PhiNode, RetInst, SelectInst, StoreInst,
                           SwitchInst, WRAPPING_FLAG_OPCODES)
from .intrinsics import intrinsic_base_name, lookup as lookup_intrinsic
from .module import Module
from .types import IntType
from .values import ConstantInt


class VerificationError(Exception):
    """Raised when a module or function violates an IR invariant."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = errors


def verify_module(module: Module) -> None:
    """Verify every function definition; raise on the first bad function."""
    errors: List[str] = []
    for function in module.definitions():
        errors.extend(collect_function_errors(function))
    if errors:
        raise VerificationError(errors)


def verify_function(function: Function) -> None:
    errors = collect_function_errors(function)
    if errors:
        raise VerificationError(errors)


def is_valid_module(module: Module) -> bool:
    try:
        verify_module(module)
    except VerificationError:
        return False
    return True


def collect_function_errors(function: Function) -> List[str]:
    """All invariant violations found in one function definition."""
    errors: List[str] = []
    where = f"@{function.name}"
    if not function.blocks:
        return [f"{where}: definition has no blocks"]

    entry = function.entry_block()
    if entry.predecessors():
        errors.append(f"{where}: entry block has predecessors")

    for block in function.blocks:
        block_name = block.name or "<anon>"
        if not block.instructions:
            errors.append(f"{where}/{block_name}: empty block")
            continue
        terminator = block.terminator()
        if terminator is None:
            errors.append(f"{where}/{block_name}: missing terminator")
        for i, inst in enumerate(block.instructions):
            if inst.parent is not block:
                errors.append(f"{where}/{block_name}: instruction with wrong parent")
            if inst.is_terminator() and i != len(block.instructions) - 1:
                errors.append(f"{where}/{block_name}: terminator mid-block")
            if isinstance(inst, PhiNode) and i > block.first_non_phi_index():
                errors.append(f"{where}/{block_name}: phi after non-phi")
            errors.extend(_check_instruction(function, block, inst))

    # Imported here: the analysis package itself imports repro.ir.
    from ..analysis.domtree import DominatorTree

    domtree = DominatorTree(function)
    errors.extend(_check_ssa(function, domtree))
    errors.extend(_check_phis(function, domtree))
    return errors


# ---------------------------------------------------------------------------


def _check_instruction(function: Function, block: BasicBlock,
                       inst: Instruction) -> List[str]:
    errors: List[str] = []
    where = f"@{function.name}: {inst.opcode} %{inst.name or '?'}"

    def err(message: str) -> None:
        errors.append(f"{where}: {message}")

    if isinstance(inst, BinaryOperator):
        if not isinstance(inst.type, IntType):
            err("binary operator on non-integer type")
        elif inst.lhs.type is not inst.type or inst.rhs.type is not inst.type:
            err("operand types do not match result type")
        if (inst.nuw or inst.nsw) and inst.opcode not in WRAPPING_FLAG_OPCODES:
            err(f"nuw/nsw flag on '{inst.opcode}'")
        if inst.exact and inst.opcode not in EXACT_FLAG_OPCODES:
            err(f"exact flag on '{inst.opcode}'")
    elif isinstance(inst, ICmpInst):
        if inst.lhs.type is not inst.rhs.type:
            err("icmp operand types differ")
        if not (inst.lhs.type.is_integer() or inst.lhs.type.is_pointer()):
            err("icmp on non-integer, non-pointer type")
    elif isinstance(inst, SelectInst):
        if not (isinstance(inst.condition.type, IntType)
                and inst.condition.type.width == 1):
            err("select condition is not i1")
        if inst.true_value.type is not inst.false_value.type:
            err("select arms have different types")
        if inst.type is not inst.true_value.type:
            err("select result type mismatch")
    elif isinstance(inst, CastInst):
        src, dst = inst.src_type, inst.type
        if not (isinstance(src, IntType) and isinstance(dst, IntType)):
            err("cast between non-integer types")
        elif inst.opcode == "trunc" and not src.width > dst.width:
            err("trunc must narrow")
        elif inst.opcode in ("zext", "sext") and not src.width < dst.width:
            err(f"{inst.opcode} must widen")
    elif isinstance(inst, LoadInst):
        if not inst.pointer.type.is_pointer():
            err("load pointer operand is not a pointer")
        if not inst.type.is_first_class():
            err("load of non-first-class type")
    elif isinstance(inst, StoreInst):
        if not inst.pointer.type.is_pointer():
            err("store pointer operand is not a pointer")
        if not inst.value.type.is_first_class():
            err("store of non-first-class type")
    elif isinstance(inst, GEPInst):
        if not inst.pointer.type.is_pointer():
            err("gep pointer operand is not a pointer")
        for index in inst.indices:
            if not isinstance(index.type, IntType):
                err("gep index is not an integer")
    elif isinstance(inst, CallInst):
        errors.extend(_check_call(function, inst))
    elif isinstance(inst, RetInst):
        if function.return_type.is_void():
            if inst.return_value is not None:
                err("ret with value in void function")
        elif inst.return_value is None:
            err("ret void in non-void function")
        elif inst.return_value.type is not function.return_type:
            err("ret value type does not match function return type")
    elif isinstance(inst, BrInst):
        if inst.is_conditional():
            condition = inst.condition
            if not (isinstance(condition.type, IntType)
                    and condition.type.width == 1):
                err("br condition is not i1")
        for successor in inst.successors():
            if not isinstance(successor, BasicBlock):
                err("br target is not a block")
            elif successor.parent is not function:
                err("br target belongs to a different function")
    elif isinstance(inst, SwitchInst):
        if not isinstance(inst.value.type, IntType):
            err("switch on non-integer value")
        seen = set()
        for case_value, case_block in inst.cases():
            if not isinstance(case_value, ConstantInt):
                err("switch case value is not a constant int")
                continue
            if case_value.type is not inst.value.type:
                err("switch case type mismatch")
            if case_value.value in seen:
                err("duplicate switch case")
            seen.add(case_value.value)
            if case_block.parent is not function:
                err("switch target belongs to a different function")
    return errors


def _check_call(function: Function, inst: CallInst) -> List[str]:
    errors: List[str] = []
    callee = inst.callee
    where = f"@{function.name}: call @{callee.name}"
    params = callee.function_type.param_types
    args = inst.args
    if len(args) != len(params) and not callee.function_type.is_vararg:
        errors.append(f"{where}: expects {len(params)} args, got {len(args)}")
    else:
        for i, (arg, param_type) in enumerate(zip(args, params)):
            if arg.type is not param_type:
                errors.append(
                    f"{where}: arg {i} has type {arg.type}, expected {param_type}")
    if callee.name.startswith("llvm."):
        base = intrinsic_base_name(callee.name)
        if lookup_intrinsic(callee.name) is None:
            errors.append(f"{where}: unknown intrinsic")
        elif lookup_intrinsic(callee.name).num_args != len(args):
            errors.append(f"{where}: wrong intrinsic arity")
        _ = base
    return errors


def _check_ssa(function: Function, domtree: DominatorTree) -> List[str]:
    """Every use must be dominated by its definition (reachable code only)."""
    errors: List[str] = []
    for block in function.blocks:
        if not domtree.is_reachable(block):
            continue
        for inst in block.instructions:
            for operand_index, operand in enumerate(inst.operands):
                if isinstance(operand, Instruction):
                    if operand.parent is None or operand.function is not function:
                        errors.append(
                            f"@{function.name}: %{inst.name or '?'} uses a "
                            "detached or foreign instruction")
                        continue
                    if not domtree.dominates_use(operand, inst, operand_index):
                        errors.append(
                            f"@{function.name}: use of %{operand.name or '?'} in "
                            f"%{inst.name or inst.opcode} is not dominated by "
                            "its definition")
                elif isinstance(operand, BasicBlock):
                    if operand.parent is not function:
                        errors.append(
                            f"@{function.name}: reference to foreign block")
    return errors


def _check_phis(function: Function, domtree: DominatorTree) -> List[str]:
    errors: List[str] = []
    for block in function.blocks:
        if not domtree.is_reachable(block):
            continue
        preds = block.predecessors()
        pred_ids = {id(p) for p in preds}
        for phi in block.phis():
            incoming = phi.incoming()
            incoming_ids = {id(b) for _, b in incoming}
            if incoming_ids != pred_ids:
                errors.append(
                    f"@{function.name}: phi %{phi.name or '?'} incoming blocks "
                    "do not match predecessors")
            for value, _ in incoming:
                if value.type is not phi.type:
                    errors.append(
                        f"@{function.name}: phi %{phi.name or '?'} incoming "
                        "value type mismatch")
    return errors
