"""Intrinsic registry.

Intrinsics are modeled, as in LLVM, as calls to specially-named declared
functions (``llvm.smax.i32``).  The registry records each intrinsic's arity,
signature shape, and width constraints; concrete semantics live in
:mod:`repro.tv.interp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .function import Function
from .module import Module
from .types import FunctionType, IntType, Type, VoidType


@dataclass(frozen=True)
class IntrinsicInfo:
    """Static description of one intrinsic family."""

    name: str                       # base name, e.g. "llvm.smax"
    num_args: int
    # Signature builder: given the overload IntType, produce (ret, params).
    # None means the intrinsic is not integer-overloaded.
    result_is_bool: bool = False
    valid_widths: Optional[Tuple[int, ...]] = None  # None = any width
    pure: bool = True               # no memory effects
    commutative: bool = False


# Integer-overloaded intrinsics usable by the mutation engine when it
# synthesizes fresh instructions (paper §IV-F generates smin/smax calls).
INTEGER_INTRINSICS: Dict[str, IntrinsicInfo] = {
    "llvm.smax": IntrinsicInfo("llvm.smax", 2, commutative=True),
    "llvm.smin": IntrinsicInfo("llvm.smin", 2, commutative=True),
    "llvm.umax": IntrinsicInfo("llvm.umax", 2, commutative=True),
    "llvm.umin": IntrinsicInfo("llvm.umin", 2, commutative=True),
    "llvm.abs": IntrinsicInfo("llvm.abs", 2),          # (value, is_int_min_poison i1)
    "llvm.ctpop": IntrinsicInfo("llvm.ctpop", 1),
    "llvm.ctlz": IntrinsicInfo("llvm.ctlz", 2),        # (value, is_zero_poison i1)
    "llvm.cttz": IntrinsicInfo("llvm.cttz", 2),
    "llvm.bswap": IntrinsicInfo("llvm.bswap", 1, valid_widths=(16, 32, 64)),
    "llvm.bitreverse": IntrinsicInfo("llvm.bitreverse", 1),
    "llvm.sadd.sat": IntrinsicInfo("llvm.sadd.sat", 2, commutative=True),
    "llvm.uadd.sat": IntrinsicInfo("llvm.uadd.sat", 2, commutative=True),
    "llvm.ssub.sat": IntrinsicInfo("llvm.ssub.sat", 2),
    "llvm.usub.sat": IntrinsicInfo("llvm.usub.sat", 2),
    "llvm.fshl": IntrinsicInfo("llvm.fshl", 3),
    "llvm.fshr": IntrinsicInfo("llvm.fshr", 3),
    "llvm.umul.with.overflow.bit": IntrinsicInfo(
        "llvm.umul.with.overflow.bit", 2, result_is_bool=True, commutative=True),
}

# Intrinsics that the mutation engine may freely generate as fresh
# instructions: binary, same-width in/out, no extra immediate arguments.
GENERATABLE_BINARY_INTRINSICS: Tuple[str, ...] = (
    "llvm.smax", "llvm.smin", "llvm.umax", "llvm.umin",
    "llvm.sadd.sat", "llvm.uadd.sat", "llvm.ssub.sat", "llvm.usub.sat",
)

OTHER_INTRINSICS: Dict[str, IntrinsicInfo] = {
    "llvm.assume": IntrinsicInfo("llvm.assume", 1, pure=False),
}


def intrinsic_base_name(full_name: str) -> str:
    """Strip trailing ``.iN`` overload suffixes: ``llvm.smax.i32`` → ``llvm.smax``."""
    parts = full_name.split(".")
    while len(parts) > 1 and parts[-1].startswith("i") and parts[-1][1:].isdigit():
        parts.pop()
    return ".".join(parts)


def lookup(full_name: str) -> Optional[IntrinsicInfo]:
    base = intrinsic_base_name(full_name)
    info = INTEGER_INTRINSICS.get(base)
    if info is not None:
        return info
    return OTHER_INTRINSICS.get(base)


def is_intrinsic_name(full_name: str) -> bool:
    return full_name.startswith("llvm.")


def overload_width(full_name: str) -> Optional[int]:
    """The ``iN`` suffix width of an overloaded intrinsic name, if any."""
    suffix = full_name.split(".")[-1]
    if suffix.startswith("i") and suffix[1:].isdigit():
        return int(suffix[1:])
    return None


def supports_width(base_name: str, width: int) -> bool:
    info = INTEGER_INTRINSICS.get(base_name)
    if info is None:
        return False
    if info.valid_widths is not None:
        return width in info.valid_widths
    return True


def declare_intrinsic(module: Module, base_name: str, width: int) -> Function:
    """Get-or-create the declaration for an integer-overloaded intrinsic."""
    info = INTEGER_INTRINSICS.get(base_name)
    if info is None:
        raise ValueError(f"unknown intrinsic {base_name}")
    if not supports_width(base_name, width):
        raise ValueError(f"{base_name} does not support width i{width}")
    full_name = f"{base_name}.i{width}"
    int_ty = IntType(width)
    params = _intrinsic_params(base_name, int_ty, info)
    ret: Type = IntType(1) if info.result_is_bool else int_ty
    function_type = FunctionType(ret, params)
    function = module.get_or_insert_function(full_name, function_type)
    if info.pure and not function.attributes.has("readnone"):
        from .attributes import Attribute

        function.attributes.add(Attribute("readnone"))
        function.attributes.add(Attribute("willreturn"))
        function.attributes.add(Attribute("nounwind"))
    return function


def declare_assume(module: Module) -> Function:
    function_type = FunctionType(VoidType(), (IntType(1),))
    function = module.get_or_insert_function("llvm.assume", function_type)
    return function


def _intrinsic_params(base_name: str, int_ty: IntType,
                      info: IntrinsicInfo) -> Tuple[Type, ...]:
    bool_ty = IntType(1)
    if base_name in ("llvm.abs", "llvm.ctlz", "llvm.cttz"):
        return (int_ty, bool_ty)
    if base_name in ("llvm.fshl", "llvm.fshr"):
        return (int_ty, int_ty, int_ty)
    if info.num_args == 1:
        return (int_ty,)
    return tuple(int_ty for _ in range(info.num_args))
