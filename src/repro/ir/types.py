"""Type system for the LLVM-like IR.

The reproduction models the part of LLVM's type system that the paper's
mutations exercise: arbitrary-bitwidth integers (``i1`` .. ``i128``),
opaque pointers (``ptr``), ``void``, labels (basic-block references), and
function types.  Types are interned so identity comparison (``is``) works,
matching how LLVM contexts unique their types.
"""

from __future__ import annotations

from typing import Dict, Tuple


MAX_INT_BITS = 128


class Type:
    """Base class for all IR types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_pointer(self) -> bool:
        return isinstance(self, PtrType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_label(self) -> bool:
        return isinstance(self, LabelType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def is_first_class(self) -> bool:
        """First-class types can be produced by instructions and passed around."""
        return self.is_integer() or self.is_pointer()

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class VoidType(Type):
    _instance: "VoidType" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "void"

    def __repr__(self) -> str:
        return "VoidType()"


class LabelType(Type):
    _instance: "LabelType" = None

    def __new__(cls) -> "LabelType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "label"

    def __repr__(self) -> str:
        return "LabelType()"


class IntType(Type):
    """An integer type of a fixed bit width (``iN``)."""

    _cache: Dict[int, "IntType"] = {}

    def __new__(cls, width: int) -> "IntType":
        if not isinstance(width, int) or width < 1 or width > MAX_INT_BITS:
            raise ValueError(f"invalid integer width: {width!r}")
        cached = cls._cache.get(width)
        if cached is not None:
            return cached
        instance = super().__new__(cls)
        instance._width = width
        cls._cache[width] = instance
        return instance

    @property
    def width(self) -> int:
        return self._width

    @property
    def mask(self) -> int:
        """All-ones bit mask for this width."""
        return (1 << self._width) - 1

    @property
    def signed_min(self) -> int:
        return -(1 << (self._width - 1))

    @property
    def signed_max(self) -> int:
        return (1 << (self._width - 1)) - 1

    @property
    def unsigned_max(self) -> int:
        return self.mask

    def __str__(self) -> str:
        return f"i{self._width}"

    def __repr__(self) -> str:
        return f"IntType({self._width})"


class PtrType(Type):
    """An opaque pointer type (modern LLVM ``ptr``).

    Typed-pointer syntax such as ``i32*`` is accepted by the parser but is
    normalized to the opaque pointer type, just like contemporary LLVM.
    """

    _instance: "PtrType" = None

    def __new__(cls) -> "PtrType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "ptr"

    def __repr__(self) -> str:
        return "PtrType()"


class FunctionType(Type):
    """A function signature: return type plus parameter types."""

    _cache: Dict[Tuple, "FunctionType"] = {}

    def __new__(cls, return_type: Type, param_types: Tuple[Type, ...],
                is_vararg: bool = False) -> "FunctionType":
        param_types = tuple(param_types)
        key = (return_type, param_types, is_vararg)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        instance = super().__new__(cls)
        instance._return_type = return_type
        instance._param_types = param_types
        instance._is_vararg = is_vararg
        cls._cache[key] = instance
        return instance

    @property
    def return_type(self) -> Type:
        return self._return_type

    @property
    def param_types(self) -> Tuple[Type, ...]:
        return self._param_types

    @property
    def is_vararg(self) -> bool:
        return self._is_vararg

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self._param_types)
        if self._is_vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self._return_type} ({params})"

    def __repr__(self) -> str:
        return f"FunctionType({self._return_type!r}, {self._param_types!r})"


# Convenient singletons, mirroring LLVM's Type::getInt32Ty-style accessors.
VOID = VoidType()
LABEL = LabelType()
PTR = PtrType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
I128 = IntType(128)


def int_type(width: int) -> IntType:
    """Return the interned integer type of the given width."""
    return IntType(width)


def same_type(a: Type, b: Type) -> bool:
    """Interned types compare by identity; this spells the intent out."""
    return a is b
