"""Core SSA value classes: values, uses, constants, and arguments.

Every operand edge in the IR is a :class:`Use` that is registered on the
used value, so ``replace_all_uses_with`` and the mutation engine's
"who uses this value" queries are O(uses), like LLVM's use lists.
"""

from __future__ import annotations

from typing import Iterator, List

from .types import IntType, PtrType, Type


class Use:
    """One operand slot of a user pointing at a used value."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int) -> None:
        self.user = user
        self.index = index

    def get(self) -> "Value":
        return self.user.operands[self.index]

    def set(self, value: "Value") -> None:
        self.user.set_operand(self.index, value)

    def __repr__(self) -> str:
        return f"Use({self.user!r}[{self.index}])"


class Value:
    """Base class of everything that can be used as an operand."""

    __slots__ = ("type", "name", "_uses")

    def __init__(self, type: Type, name: str = "") -> None:
        self.type = type
        self.name = name
        self._uses: List[Use] = []

    @property
    def uses(self) -> List[Use]:
        return list(self._uses)

    def users(self) -> List["User"]:
        return [use.user for use in self._uses]

    def num_uses(self) -> int:
        return len(self._uses)

    def has_uses(self) -> bool:
        return bool(self._uses)

    def _add_use(self, use: Use) -> None:
        self._uses.append(use)

    def _remove_use(self, use: Use) -> None:
        for i, existing in enumerate(self._uses):
            if existing is use:
                del self._uses[i]
                return
        raise ValueError("use not found on value")

    def replace_all_uses_with(self, new_value: "Value") -> None:
        """Redirect every use of this value to ``new_value``."""
        if new_value is self:
            return
        for use in list(self._uses):
            use.set(new_value)

    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def short_name(self) -> str:
        """A human-readable handle for diagnostics."""
        return f"%{self.name}" if self.name else f"<{type(self).__name__}>"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.type}, {self.short_name()})"


class User(Value):
    """A value that has operands (instructions, mostly)."""

    __slots__ = ("operands", "_operand_uses")

    def __init__(self, type: Type, name: str = "") -> None:
        super().__init__(type, name)
        self.operands: List[Value] = []
        self._operand_uses: List[Use] = []

    def _append_operand(self, value: Value) -> None:
        use = Use(self, len(self.operands))
        self.operands.append(value)
        self._operand_uses.append(use)
        value._add_use(use)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        use = self._operand_uses[index]
        if old is value:
            return
        old._remove_use(use)
        self.operands[index] = value
        value._add_use(use)

    def get_operand(self, index: int) -> Value:
        return self.operands[index]

    def num_operands(self) -> int:
        return len(self.operands)

    def drop_all_references(self) -> None:
        """Detach this user from all of its operands' use lists."""
        for operand, use in zip(self.operands, self._operand_uses):
            operand._remove_use(use)
        self.operands.clear()
        self._operand_uses.clear()

    def operand_values(self) -> Iterator[Value]:
        return iter(self.operands)


class Constant(Value):
    """Base class for constants (which have no defining instruction)."""

    __slots__ = ()


class ConstantInt(Constant):
    """An integer constant, stored canonically as an unsigned value.

    ``value`` is always in ``[0, 2**width)``; use :meth:`signed_value` for
    the two's-complement interpretation.
    """

    __slots__ = ("value",)

    def __init__(self, type: IntType, value: int) -> None:
        if not isinstance(type, IntType):
            raise TypeError(f"ConstantInt requires an integer type, got {type}")
        super().__init__(type)
        self.value = value & type.mask

    @classmethod
    def get(cls, type: IntType, value: int) -> "ConstantInt":
        return cls(type, value)

    @classmethod
    def true(cls) -> "ConstantInt":
        return cls(IntType(1), 1)

    @classmethod
    def false(cls) -> "ConstantInt":
        return cls(IntType(1), 0)

    def signed_value(self) -> int:
        width = self.type.width
        if self.value >= (1 << (width - 1)):
            return self.value - (1 << width)
        return self.value

    def is_zero(self) -> bool:
        return self.value == 0

    def is_one(self) -> bool:
        return self.value == 1

    def is_all_ones(self) -> bool:
        return self.value == self.type.mask

    def __repr__(self) -> str:
        return f"ConstantInt({self.type}, {self.signed_value()})"


class UndefValue(Constant):
    """``undef``: an unspecified-but-fixed-per-use bit pattern."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"UndefValue({self.type})"


class PoisonValue(Constant):
    """``poison``: the result of a violated operation precondition."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"PoisonValue({self.type})"


class ConstantPointerNull(Constant):
    """The ``null`` pointer constant."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(PtrType())

    def __repr__(self) -> str:
        return "ConstantPointerNull()"


class Argument(Value):
    """A formal function parameter."""

    __slots__ = ("parent", "index", "attributes")

    def __init__(self, type: Type, name: str = "", parent=None, index: int = -1) -> None:
        from .attributes import AttributeSet

        super().__init__(type, name)
        self.parent = parent
        self.index = index
        self.attributes = AttributeSet()

    def __repr__(self) -> str:
        return f"Argument({self.type}, %{self.name})"


def same_value(a: "Value", b: "Value") -> bool:
    """Identity, or structural equality for constants.

    Constants are not interned, so pattern matchers must treat two
    ``ConstantInt`` objects with the same type and value as the same value.
    """
    if a is b:
        return True
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.type is b.type and a.value == b.value
    if isinstance(a, ConstantPointerNull) and isinstance(b, ConstantPointerNull):
        return True
    return False


def constant_to_key(value: Constant):
    """A hashable structural key for a constant (used by GVN/CSE)."""
    if isinstance(value, ConstantInt):
        return ("int", value.type.width, value.value)
    if isinstance(value, UndefValue):
        return ("undef", str(value.type))
    if isinstance(value, PoisonValue):
        return ("poison", str(value.type))
    if isinstance(value, ConstantPointerNull):
        return ("null",)
    return ("const", id(value))
