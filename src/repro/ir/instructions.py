"""Instruction classes for the LLVM-like IR.

The instruction set covers what the paper's mutations and optimizations
exercise: integer arithmetic with poison-generating flags, comparisons,
selects, casts, memory operations, calls (including intrinsics and
``llvm.assume`` operand bundles), control flow, phis, and ``freeze``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .attributes import AttributeSet
from .types import IntType, PtrType, Type, VoidType
from .values import ConstantInt, User, Value

if TYPE_CHECKING:  # pragma: no cover
    from .basicblock import BasicBlock
    from .function import Function


# ---------------------------------------------------------------------------
# Opcode metadata tables (consumed by the mutation engine and the verifier).
# ---------------------------------------------------------------------------

BINARY_OPCODES: Tuple[str, ...] = (
    "add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
    "shl", "lshr", "ashr", "and", "or", "xor",
)

COMMUTATIVE_OPCODES = frozenset({"add", "mul", "and", "or", "xor"})

# Opcodes that accept nsw/nuw flags.
WRAPPING_FLAG_OPCODES = frozenset({"add", "sub", "mul", "shl"})

# Opcodes that accept the `exact` flag.
EXACT_FLAG_OPCODES = frozenset({"udiv", "sdiv", "lshr", "ashr"})

# Opcodes whose semantics are uniform across every integer bit width; only
# these participate in the bitwidth-change mutation (paper §IV-H).
BITWIDTH_POLYMORPHIC_OPCODES = frozenset(BINARY_OPCODES)

ICMP_PREDICATES: Tuple[str, ...] = (
    "eq", "ne", "ugt", "uge", "ult", "ule", "sgt", "sge", "slt", "sle",
)

SIGNED_PREDICATES = frozenset({"sgt", "sge", "slt", "sle"})
UNSIGNED_PREDICATES = frozenset({"ugt", "uge", "ult", "ule"})

CAST_OPCODES: Tuple[str, ...] = ("trunc", "zext", "sext")

SWAPPED_PREDICATE: Dict[str, str] = {
    "eq": "eq", "ne": "ne",
    "ugt": "ult", "uge": "ule", "ult": "ugt", "ule": "uge",
    "sgt": "slt", "sge": "sle", "slt": "sgt", "sle": "sge",
}

INVERTED_PREDICATE: Dict[str, str] = {
    "eq": "ne", "ne": "eq",
    "ugt": "ule", "uge": "ult", "ult": "uge", "ule": "ugt",
    "sgt": "sle", "sge": "slt", "slt": "sge", "sle": "sgt",
}


class Instruction(User):
    """Base class of all instructions."""

    __slots__ = ("opcode", "parent")

    def __init__(self, opcode: str, type: Type, operands: Sequence[Value],
                 name: str = "") -> None:
        super().__init__(type, name)
        self.opcode = opcode
        self.parent: Optional["BasicBlock"] = None
        for operand in operands:
            self._append_operand(operand)

    # -- placement ---------------------------------------------------------

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def erase_from_parent(self) -> None:
        """Remove from the containing block and drop operand references."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    def remove_from_parent(self) -> None:
        """Detach from the block but keep operand references intact."""
        if self.parent is not None:
            self.parent.remove(self)

    def index_in_block(self) -> int:
        if self.parent is None:
            raise ValueError("instruction has no parent block")
        return self.parent.index_of(self)

    # -- classification ----------------------------------------------------

    def is_terminator(self) -> bool:
        return isinstance(self, (RetInst, BrInst, SwitchInst, UnreachableInst))

    def is_binary_op(self) -> bool:
        return isinstance(self, BinaryOperator)

    def is_phi(self) -> bool:
        return isinstance(self, PhiNode)

    def may_read_memory(self) -> bool:
        if isinstance(self, LoadInst):
            return True
        if isinstance(self, CallInst):
            return not self.is_readnone()
        return False

    def may_write_memory(self) -> bool:
        if isinstance(self, StoreInst):
            return True
        if isinstance(self, CallInst):
            return not (self.is_readnone() or self.is_readonly())
        return False

    def has_side_effects(self) -> bool:
        return (self.may_write_memory() or self.is_terminator()
                or isinstance(self, (StoreInst, AllocaInst)))

    def flags_repr(self) -> str:
        """Printable flag string (``"nuw nsw "`` etc.); empty by default."""
        return ""

    def clone(self) -> "Instruction":  # pragma: no cover - overridden
        raise NotImplementedError(f"clone not implemented for {self.opcode}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.opcode} {self.short_name()}>"


class BinaryOperator(Instruction):
    """Integer binary arithmetic: ``add``, ``sub``, ``mul``, shifts, etc."""

    __slots__ = ("nuw", "nsw", "exact")

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "",
                 nuw: bool = False, nsw: bool = False, exact: bool = False) -> None:
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode: {opcode}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)
        self.nuw = nuw
        self.nsw = nsw
        self.exact = exact

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPCODES

    def supports_wrapping_flags(self) -> bool:
        return self.opcode in WRAPPING_FLAG_OPCODES

    def supports_exact_flag(self) -> bool:
        return self.opcode in EXACT_FLAG_OPCODES

    def flags_repr(self) -> str:
        parts = []
        if self.nuw:
            parts.append("nuw")
        if self.nsw:
            parts.append("nsw")
        if self.exact:
            parts.append("exact")
        return "".join(part + " " for part in parts)

    def clone(self) -> "BinaryOperator":
        return BinaryOperator(self.opcode, self.lhs, self.rhs, "",
                              nuw=self.nuw, nsw=self.nsw, exact=self.exact)


class ICmpInst(Instruction):
    """Integer/pointer comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        super().__init__("icmp", IntType(1), [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def swapped_predicate(self) -> str:
        return SWAPPED_PREDICATE[self.predicate]

    def inverted_predicate(self) -> str:
        return INVERTED_PREDICATE[self.predicate]

    def is_signed(self) -> bool:
        return self.predicate in SIGNED_PREDICATES

    def is_unsigned(self) -> bool:
        return self.predicate in UNSIGNED_PREDICATES

    def is_equality(self) -> bool:
        return self.predicate in ("eq", "ne")

    def clone(self) -> "ICmpInst":
        return ICmpInst(self.predicate, self.lhs, self.rhs)


class SelectInst(Instruction):
    """``select i1 %c, T %a, T %b``."""

    __slots__ = ()

    def __init__(self, condition: Value, true_value: Value, false_value: Value,
                 name: str = "") -> None:
        super().__init__("select", true_value.type,
                         [condition, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]

    def clone(self) -> "SelectInst":
        return SelectInst(self.condition, self.true_value, self.false_value)


class CastInst(Instruction):
    """Integer casts: ``trunc``, ``zext``, ``sext``."""

    __slots__ = ()

    def __init__(self, opcode: str, value: Value, dest_type: Type, name: str = "") -> None:
        if opcode not in CAST_OPCODES:
            raise ValueError(f"unknown cast opcode: {opcode}")
        super().__init__(opcode, dest_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def src_type(self) -> Type:
        return self.value.type

    def clone(self) -> "CastInst":
        return CastInst(self.opcode, self.value, self.type)


class FreezeInst(Instruction):
    """``freeze`` stops poison/undef propagation by picking an arbitrary value."""

    __slots__ = ()

    def __init__(self, value: Value, name: str = "") -> None:
        super().__init__("freeze", value.type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]

    def clone(self) -> "FreezeInst":
        return FreezeInst(self.value)


class AllocaInst(Instruction):
    """Stack allocation of one element of ``allocated_type``."""

    __slots__ = ("allocated_type", "align")

    def __init__(self, allocated_type: Type, name: str = "", align: int = 0) -> None:
        super().__init__("alloca", PtrType(), [], name)
        self.allocated_type = allocated_type
        self.align = align

    def clone(self) -> "AllocaInst":
        return AllocaInst(self.allocated_type, "", self.align)


class LoadInst(Instruction):
    """``load T, ptr %p``."""

    __slots__ = ("align",)

    def __init__(self, loaded_type: Type, pointer: Value, name: str = "",
                 align: int = 0) -> None:
        super().__init__("load", loaded_type, [pointer], name)
        self.align = align

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def clone(self) -> "LoadInst":
        return LoadInst(self.type, self.pointer, "", self.align)


class StoreInst(Instruction):
    """``store T %v, ptr %p``."""

    __slots__ = ("align",)

    def __init__(self, value: Value, pointer: Value, align: int = 0) -> None:
        super().__init__("store", VoidType(), [value, pointer], "")
        self.align = align

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def clone(self) -> "StoreInst":
        return StoreInst(self.value, self.pointer, self.align)


class GEPInst(Instruction):
    """Simplified ``getelementptr``: byte-style pointer arithmetic.

    ``getelementptr T, ptr %p, iN %idx`` computes ``p + idx * sizeof(T)``.
    The paper treats GEP as arithmetic for mutation purposes (§IV-E).
    """

    __slots__ = ("source_type", "inbounds")

    def __init__(self, source_type: Type, pointer: Value, indices: Sequence[Value],
                 name: str = "", inbounds: bool = False) -> None:
        super().__init__("getelementptr", PtrType(), [pointer, *indices], name)
        self.source_type = source_type
        self.inbounds = inbounds

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    def flags_repr(self) -> str:
        return "inbounds " if self.inbounds else ""

    def clone(self) -> "GEPInst":
        return GEPInst(self.source_type, self.pointer, self.indices, "",
                       inbounds=self.inbounds)


class OperandBundle:
    """An operand bundle on a call, e.g. ``[ "align"(ptr %p, i64 123) ]``."""

    __slots__ = ("tag", "inputs", "_range")

    def __init__(self, tag: str, inputs: Sequence[Value]) -> None:
        self.tag = tag
        self.inputs = list(inputs)
        self._range: Optional[Tuple[int, int]] = None

    def __repr__(self) -> str:
        return f'OperandBundle("{self.tag}", {len(self.inputs)} inputs)'


class CallInst(Instruction):
    """A direct call. The callee is a :class:`~repro.ir.function.Function`.

    Operand layout: ``[arg0, arg1, ..., bundle inputs...]`` — keeping bundle
    inputs as real operands keeps use lists correct when mutations rewrite
    them.  ``bundle_slices`` records which operand ranges belong to which
    bundle.
    """

    __slots__ = ("callee", "bundles", "attributes")

    def __init__(self, callee, args: Sequence[Value], name: str = "",
                 bundles: Sequence[OperandBundle] = ()) -> None:
        return_type = callee.return_type
        super().__init__("call", return_type, list(args), name)
        self.callee = callee
        self.attributes = AttributeSet()
        self.bundles: List[OperandBundle] = []
        for bundle in bundles:
            self.add_bundle(bundle)

    def add_bundle(self, bundle: OperandBundle) -> None:
        # Register bundle inputs as operands so use lists stay correct.
        registered = []
        for value in bundle.inputs:
            self._append_operand(value)
            registered.append(value)
        recorded = OperandBundle(bundle.tag, [])
        recorded.inputs = registered
        start = self.num_operands() - len(registered)
        recorded._range = (start, self.num_operands())  # type: ignore[attr-defined]
        self.bundles.append(recorded)

    @property
    def args(self) -> List[Value]:
        num_bundle_inputs = sum(len(b.inputs) for b in self.bundles)
        end = self.num_operands() - num_bundle_inputs
        return self.operands[:end]

    def bundle_operands(self, bundle: OperandBundle) -> List[Value]:
        start, end = bundle._range  # type: ignore[attr-defined]
        return self.operands[start:end]

    def is_intrinsic(self) -> bool:
        return self.callee.name.startswith("llvm.")

    def intrinsic_name(self) -> str:
        """Base intrinsic name without the type suffix (``llvm.smax``)."""
        name = self.callee.name
        if not name.startswith("llvm."):
            return ""
        parts = name.split(".")
        while parts and (parts[-1].startswith("i") and parts[-1][1:].isdigit()):
            parts.pop()
        return ".".join(parts)

    def is_readnone(self) -> bool:
        return self.callee.attributes.has("readnone")

    def is_readonly(self) -> bool:
        return self.callee.attributes.has("readonly")

    def clone(self) -> "CallInst":
        cloned = CallInst(self.callee, self.args)
        for bundle in self.bundles:
            cloned.add_bundle(OperandBundle(bundle.tag, self.bundle_operands(bundle)))
        cloned.attributes = self.attributes.copy()
        return cloned


class RetInst(Instruction):
    """``ret void`` or ``ret T %v``."""

    __slots__ = ()

    def __init__(self, value: Optional[Value] = None) -> None:
        operands = [] if value is None else [value]
        super().__init__("ret", VoidType(), operands, "")

    @property
    def return_value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def clone(self) -> "RetInst":
        return RetInst(self.return_value)


class BrInst(Instruction):
    """Unconditional (``br label %bb``) or conditional branch."""

    __slots__ = ()

    def __init__(self, *args) -> None:
        if len(args) == 1:
            super().__init__("br", VoidType(), [args[0]], "")
        elif len(args) == 3:
            condition, true_block, false_block = args
            super().__init__("br", VoidType(),
                             [condition, true_block, false_block], "")
        else:
            raise ValueError("BrInst takes 1 (dest) or 3 (cond, t, f) operands")

    def is_conditional(self) -> bool:
        return self.num_operands() == 3

    @property
    def condition(self) -> Optional[Value]:
        return self.operands[0] if self.is_conditional() else None

    def successors(self) -> List["BasicBlock"]:
        if self.is_conditional():
            return [self.operands[1], self.operands[2]]
        return [self.operands[0]]

    def clone(self) -> "BrInst":
        if self.is_conditional():
            return BrInst(self.operands[0], self.operands[1], self.operands[2])
        return BrInst(self.operands[0])


class SwitchInst(Instruction):
    """``switch iN %v, label %default [ iN C0, label %bb0 ... ]``.

    Operand layout: ``[value, default, case_val0, case_block0, ...]``.
    """

    __slots__ = ()

    def __init__(self, value: Value, default: "BasicBlock",
                 cases: Sequence[Tuple[ConstantInt, "BasicBlock"]] = ()) -> None:
        operands: List[Value] = [value, default]
        for case_value, case_block in cases:
            operands.append(case_value)
            operands.append(case_block)
        super().__init__("switch", VoidType(), operands, "")

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def default(self) -> "BasicBlock":
        return self.operands[1]

    def cases(self) -> List[Tuple[ConstantInt, "BasicBlock"]]:
        pairs = []
        for i in range(2, self.num_operands(), 2):
            pairs.append((self.operands[i], self.operands[i + 1]))
        return pairs

    def successors(self) -> List["BasicBlock"]:
        return [self.default] + [block for _, block in self.cases()]

    def clone(self) -> "SwitchInst":
        return SwitchInst(self.value, self.default, self.cases())


class UnreachableInst(Instruction):
    """Executing ``unreachable`` is immediate undefined behavior."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("unreachable", VoidType(), [], "")

    def clone(self) -> "UnreachableInst":
        return UnreachableInst()


class PhiNode(Instruction):
    """SSA phi. Operand layout: ``[v0, bb0, v1, bb1, ...]``."""

    __slots__ = ()

    def __init__(self, type: Type,
                 incoming: Sequence[Tuple[Value, "BasicBlock"]] = (),
                 name: str = "") -> None:
        operands: List[Value] = []
        for value, block in incoming:
            operands.append(value)
            operands.append(block)
        super().__init__("phi", type, operands, name)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self._append_operand(value)
        self._append_operand(block)

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        pairs = []
        for i in range(0, self.num_operands(), 2):
            pairs.append((self.operands[i], self.operands[i + 1]))
        return pairs

    def incoming_value_for(self, block: "BasicBlock") -> Optional[Value]:
        for value, incoming_block in self.incoming():
            if incoming_block is block:
                return value
        return None

    def remove_incoming(self, block: "BasicBlock") -> None:
        """Drop the incoming edge from ``block`` (all occurrences)."""
        pairs = [(v, b) for v, b in self.incoming() if b is not block]
        self.drop_all_references()
        for value, incoming_block in pairs:
            self._append_operand(value)
            self._append_operand(incoming_block)

    def set_incoming_value_for(self, block: "BasicBlock", value: Value) -> None:
        for i in range(1, self.num_operands(), 2):
            if self.operands[i] is block:
                self.set_operand(i - 1, value)
                return
        raise ValueError(f"phi has no incoming edge from {block}")

    def clone(self) -> "PhiNode":
        return PhiNode(self.type, self.incoming())


def terminator_successors(inst: Instruction) -> List["BasicBlock"]:
    """Successor blocks of a terminator (empty for ret/unreachable)."""
    if isinstance(inst, (BrInst, SwitchInst)):
        return inst.successors()
    return []
