"""IRBuilder: convenience API for constructing instructions in a block."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .basicblock import BasicBlock
from .function import Function
from .instructions import (AllocaInst, BinaryOperator, BrInst, CallInst,
                           CastInst, FreezeInst, GEPInst, ICmpInst,
                           Instruction, LoadInst, OperandBundle, PhiNode,
                           RetInst, SelectInst, StoreInst, SwitchInst,
                           UnreachableInst)
from .types import IntType, Type
from .values import ConstantInt, Value


class IRBuilder:
    """Inserts instructions at a movable insertion point.

    The insertion point is (block, index); ``index is None`` means append.
    """

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self._block = block
        self._index: Optional[int] = None

    # -- insertion point ----------------------------------------------------

    def set_insert_point(self, block: BasicBlock,
                         index: Optional[int] = None) -> None:
        self._block = block
        self._index = index

    def set_insert_before(self, inst: Instruction) -> None:
        self._block = inst.parent
        self._index = inst.parent.index_of(inst)

    def set_insert_after(self, inst: Instruction) -> None:
        self._block = inst.parent
        self._index = inst.parent.index_of(inst) + 1

    @property
    def block(self) -> Optional[BasicBlock]:
        return self._block

    def _insert(self, inst: Instruction) -> Instruction:
        if self._block is None:
            raise ValueError("IRBuilder has no insertion point")
        if self._index is None:
            self._block.append(inst)
        else:
            self._block.insert(self._index, inst)
            self._index += 1
        if not inst.name and inst.type.is_first_class():
            function = self._block.parent
            if function is not None:
                inst.name = function.next_temp_name()
        return inst

    # -- constants -----------------------------------------------------------

    def int_const(self, type: IntType, value: int) -> ConstantInt:
        return ConstantInt(type, value)

    # -- arithmetic ------------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "",
              nuw: bool = False, nsw: bool = False,
              exact: bool = False) -> BinaryOperator:
        return self._insert(BinaryOperator(opcode, lhs, rhs, name,
                                           nuw=nuw, nsw=nsw, exact=exact))

    def add(self, lhs: Value, rhs: Value, name: str = "", **flags) -> BinaryOperator:
        return self.binop("add", lhs, rhs, name, **flags)

    def sub(self, lhs: Value, rhs: Value, name: str = "", **flags) -> BinaryOperator:
        return self.binop("sub", lhs, rhs, name, **flags)

    def mul(self, lhs: Value, rhs: Value, name: str = "", **flags) -> BinaryOperator:
        return self.binop("mul", lhs, rhs, name, **flags)

    def udiv(self, lhs: Value, rhs: Value, name: str = "", **flags) -> BinaryOperator:
        return self.binop("udiv", lhs, rhs, name, **flags)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "", **flags) -> BinaryOperator:
        return self.binop("sdiv", lhs, rhs, name, **flags)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("urem", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("srem", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "", **flags) -> BinaryOperator:
        return self.binop("shl", lhs, rhs, name, **flags)

    def lshr(self, lhs: Value, rhs: Value, name: str = "", **flags) -> BinaryOperator:
        return self.binop("lshr", lhs, rhs, name, **flags)

    def ashr(self, lhs: Value, rhs: Value, name: str = "", **flags) -> BinaryOperator:
        return self.binop("ashr", lhs, rhs, name, **flags)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("xor", lhs, rhs, name)

    def not_(self, value: Value, name: str = "") -> BinaryOperator:
        all_ones = ConstantInt(value.type, value.type.mask)
        return self.binop("xor", value, all_ones, name)

    def neg(self, value: Value, name: str = "") -> BinaryOperator:
        zero = ConstantInt(value.type, 0)
        return self.binop("sub", zero, value, name)

    # -- comparisons / select -----------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value,
             name: str = "") -> ICmpInst:
        return self._insert(ICmpInst(predicate, lhs, rhs, name))

    def select(self, condition: Value, true_value: Value, false_value: Value,
               name: str = "") -> SelectInst:
        return self._insert(SelectInst(condition, true_value, false_value, name))

    # -- casts ------------------------------------------------------------------

    def cast(self, opcode: str, value: Value, dest_type: Type,
             name: str = "") -> CastInst:
        return self._insert(CastInst(opcode, value, dest_type, name))

    def trunc(self, value: Value, dest_type: Type, name: str = "") -> CastInst:
        return self.cast("trunc", value, dest_type, name)

    def zext(self, value: Value, dest_type: Type, name: str = "") -> CastInst:
        return self.cast("zext", value, dest_type, name)

    def sext(self, value: Value, dest_type: Type, name: str = "") -> CastInst:
        return self.cast("sext", value, dest_type, name)

    def freeze(self, value: Value, name: str = "") -> FreezeInst:
        return self._insert(FreezeInst(value, name))

    # -- memory --------------------------------------------------------------------

    def alloca(self, allocated_type: Type, name: str = "",
               align: int = 0) -> AllocaInst:
        return self._insert(AllocaInst(allocated_type, name, align))

    def load(self, loaded_type: Type, pointer: Value, name: str = "",
             align: int = 0) -> LoadInst:
        return self._insert(LoadInst(loaded_type, pointer, name, align))

    def store(self, value: Value, pointer: Value, align: int = 0) -> StoreInst:
        return self._insert(StoreInst(value, pointer, align))

    def gep(self, source_type: Type, pointer: Value, indices: Sequence[Value],
            name: str = "", inbounds: bool = False) -> GEPInst:
        return self._insert(GEPInst(source_type, pointer, indices, name,
                                    inbounds=inbounds))

    # -- calls / control flow ---------------------------------------------------

    def call(self, callee: Function, args: Sequence[Value], name: str = "",
             bundles: Sequence[OperandBundle] = ()) -> CallInst:
        return self._insert(CallInst(callee, args, name, bundles))

    def ret(self, value: Optional[Value] = None) -> RetInst:
        return self._insert(RetInst(value))

    def br(self, dest: BasicBlock) -> BrInst:
        return self._insert(BrInst(dest))

    def cond_br(self, condition: Value, true_block: BasicBlock,
                false_block: BasicBlock) -> BrInst:
        return self._insert(BrInst(condition, true_block, false_block))

    def switch(self, value: Value, default: BasicBlock,
               cases: Sequence[Tuple[ConstantInt, BasicBlock]] = ()) -> SwitchInst:
        return self._insert(SwitchInst(value, default, cases))

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst())

    def phi(self, type: Type, name: str = "") -> PhiNode:
        return self._insert(PhiNode(type, (), name))
