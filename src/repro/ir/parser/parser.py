"""Recursive-descent parser for the ``.ll``-style textual IR.

Supports the subset of LLVM assembly the paper's artifacts use: function
definitions and declarations, integer/pointer types (typed pointers like
``i32*`` are normalized to opaque ``ptr``), all instruction forms in
:mod:`repro.ir.instructions`, parameter/function attributes (inline and via
``attributes #N`` groups), ``align`` annotations, operand bundles on calls,
and forward references to labels and values.  Metadata tokens are skipped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..attributes import (Attribute, AttributeSet, FUNCTION_ATTRIBUTES,
                          PARAM_FLAG_ATTRIBUTES, PARAM_INT_ATTRIBUTES)
from ..basicblock import BasicBlock
from ..function import Function
from ..instructions import (AllocaInst, BINARY_OPCODES, BinaryOperator,
                            BrInst, CAST_OPCODES, CallInst, CastInst,
                            FreezeInst, GEPInst, ICMP_PREDICATES, ICmpInst,
                            LoadInst, OperandBundle, PhiNode, RetInst,
                            SelectInst, StoreInst, SwitchInst,
                            UnreachableInst)
from ..module import Module
from ..types import (FunctionType, IntType, LabelType, PtrType, Type,
                     VoidType)
from ..values import (ConstantInt, ConstantPointerNull, PoisonValue,
                      UndefValue, Value)
from .lexer import (ATTR_GROUP, GLOBAL, INT, LOCAL, METADATA, PUNCT, STRING,
                    TokenStream, WORD, tokenize)


class ParseError(Exception):
    """Raised when the input is not valid IR text."""


class _Forward(Value):
    """Placeholder for a value referenced before its definition."""

    __slots__ = ()


def parse_module(source: str, name: str = "module") -> Module:
    """Parse a whole module from text."""
    try:
        tokens = TokenStream(tokenize(source))
    except Exception as exc:
        raise ParseError(str(exc)) from exc
    parser = _Parser(tokens, name)
    try:
        return parser.parse_module()
    except SyntaxError as exc:
        raise ParseError(str(exc)) from exc


def parse_function(source: str) -> Function:
    """Parse a single function (helper for tests and examples)."""
    module = parse_module(source)
    definitions = module.definitions()
    if len(definitions) != 1:
        raise ParseError(f"expected exactly one definition, got {len(definitions)}")
    return definitions[0]


class _Parser:
    def __init__(self, tokens: TokenStream, module_name: str) -> None:
        self.tokens = tokens
        self.module = Module(module_name)
        # Attribute groups may be declared after use: #N -> AttributeSet.
        self._attr_groups: Dict[str, AttributeSet] = {}
        self._pending_group_refs: List[Tuple[Function, str]] = []

    # -- top level ----------------------------------------------------------

    def parse_module(self) -> Module:
        while not self.tokens.at_eof():
            if self.tokens.at(WORD, "define"):
                self.parse_define()
            elif self.tokens.at(WORD, "declare"):
                self.parse_declare()
            elif self.tokens.at(WORD, "attributes"):
                self.parse_attribute_group()
            elif self.tokens.at(WORD, "source_filename") or self.tokens.at(WORD, "target"):
                self._skip_line_like()
            else:
                token = self.tokens.peek()
                raise SyntaxError(
                    f"unexpected top-level token {token.text!r} "
                    f"at line {token.line}:{token.column}")
        for function, group in self._pending_group_refs:
            attrs = self._attr_groups.get(group)
            if attrs is None:
                raise SyntaxError(f"undefined attribute group #{group}")
            for attr in attrs:
                function.attributes.add(attr)
        return self.module

    def _skip_line_like(self) -> None:
        # source_filename = "..." / target datalayout = "..."
        line = self.tokens.peek().line
        while not self.tokens.at_eof() and self.tokens.peek().line == line:
            self.tokens.next()

    def parse_attribute_group(self) -> None:
        self.tokens.expect(WORD, "attributes")
        group = self.tokens.expect(ATTR_GROUP).text
        self.tokens.expect(PUNCT, "=")
        self.tokens.expect(PUNCT, "{")
        attrs = AttributeSet()
        while not self.tokens.at(PUNCT, "}"):
            attrs.add(self._parse_one_attribute())
        self.tokens.expect(PUNCT, "}")
        self._attr_groups[group] = attrs

    def _parse_one_attribute(self) -> Attribute:
        word = self.tokens.expect(WORD).text
        if self.tokens.accept(PUNCT, "("):
            value = int(self.tokens.expect(INT).text)
            self.tokens.expect(PUNCT, ")")
            return Attribute(word, value)
        if word == "align" and self.tokens.at(INT):
            return Attribute("align", int(self.tokens.next().text))
        return Attribute(word)

    # -- declarations & definitions ------------------------------------------

    def parse_declare(self) -> None:
        self.tokens.expect(WORD, "declare")
        return_type = self.parse_type()
        name = self.tokens.expect(GLOBAL).text
        param_types, param_attr_sets, _ = self._parse_param_list(named=False)
        function_type = FunctionType(return_type, tuple(param_types))
        function = self.module.get_or_insert_function(name, function_type)
        for arg, attrs in zip(function.arguments, param_attr_sets):
            arg.attributes = attrs
        self._parse_function_attrs(function)

    def parse_define(self) -> None:
        self.tokens.expect(WORD, "define")
        return_type = self.parse_type()
        name = self.tokens.expect(GLOBAL).text
        param_types, param_attr_sets, param_names = self._parse_param_list(named=True)
        function_type = FunctionType(return_type, tuple(param_types))
        if name in self.module:
            raise SyntaxError(f"redefinition of @{name}")
        function = Function(function_type, name, self.module,
                            arg_names=param_names)
        for arg, attrs in zip(function.arguments, param_attr_sets):
            arg.attributes = attrs
        self._parse_function_attrs(function)
        self.tokens.expect(PUNCT, "{")
        _BodyParser(self, function).parse_body()
        self.tokens.expect(PUNCT, "}")

    def _parse_param_list(self, named: bool):
        self.tokens.expect(PUNCT, "(")
        types: List[Type] = []
        attr_sets: List[AttributeSet] = []
        names: List[str] = []
        first = True
        while not self.tokens.at(PUNCT, ")"):
            if not first:
                self.tokens.expect(PUNCT, ",")
            first = False
            if self.tokens.accept(PUNCT, "..."):
                break
            param_type = self.parse_type()
            attrs = self._parse_param_attrs(param_type)
            param_name = ""
            local = self.tokens.accept(LOCAL)
            if local is not None:
                param_name = local.text
            types.append(param_type)
            attr_sets.append(attrs)
            names.append(param_name)
        self.tokens.expect(PUNCT, ")")
        return types, attr_sets, names

    def _parse_param_attrs(self, param_type: Type) -> AttributeSet:
        attrs = AttributeSet()
        while self.tokens.at(WORD):
            word = self.tokens.peek().text
            if word in PARAM_INT_ATTRIBUTES:
                self.tokens.next()
                if word == "align":
                    attrs.add(Attribute("align", int(self.tokens.expect(INT).text)))
                else:
                    self.tokens.expect(PUNCT, "(")
                    value = int(self.tokens.expect(INT).text)
                    self.tokens.expect(PUNCT, ")")
                    attrs.add(Attribute(word, value))
            elif word in PARAM_FLAG_ATTRIBUTES:
                self.tokens.next()
                attrs.add(Attribute(word))
            else:
                break
        return attrs

    def _parse_function_attrs(self, function: Function) -> None:
        while True:
            if self.tokens.at(ATTR_GROUP):
                group = self.tokens.next().text
                self._pending_group_refs.append((function, group))
            elif self.tokens.at(WORD) and self.tokens.peek().text in FUNCTION_ATTRIBUTES:
                function.attributes.add(Attribute(self.tokens.next().text))
            else:
                break

    # -- types ------------------------------------------------------------------

    def parse_type(self) -> Type:
        token = self.tokens.expect(WORD)
        text = token.text
        base: Type
        if text == "void":
            base = VoidType()
        elif text == "ptr":
            base = PtrType()
        elif text == "label":
            base = LabelType()
        elif text.startswith("i") and text[1:].isdigit():
            try:
                base = IntType(int(text[1:]))
            except ValueError as exc:
                raise SyntaxError(
                    f"invalid integer type {text!r} at line "
                    f"{token.line}:{token.column}") from exc
        else:
            raise SyntaxError(
                f"unknown type {text!r} at line {token.line}:{token.column}")
        # Typed pointers (i32*, i8**) normalize to opaque ptr.
        while self.tokens.accept(PUNCT, "*"):
            base = PtrType()
        return base


class _BodyParser:
    """Parses the body of one function definition."""

    def __init__(self, parent: _Parser, function: Function) -> None:
        self.parent = parent
        self.tokens = parent.tokens
        self.module = parent.module
        self.function = function
        self.values: Dict[str, Value] = {}
        self.blocks: Dict[str, BasicBlock] = {}
        self.forwards: Dict[str, _Forward] = {}
        for arg in function.arguments:
            if arg.name:
                self.values[arg.name] = arg

    # -- name resolution ------------------------------------------------------

    def define_value(self, name: str, value: Value) -> None:
        if name in self.values:
            raise SyntaxError(f"redefinition of %{name}")
        forward = self.forwards.pop(name, None)
        if forward is not None:
            if forward.type is not value.type:
                raise SyntaxError(
                    f"%{name} used with type {forward.type} but defined "
                    f"with type {value.type}")
            forward.replace_all_uses_with(value)
        self.values[name] = value

    def lookup_value(self, name: str, type: Type) -> Value:
        existing = self.values.get(name)
        if existing is not None:
            if existing.type is not type:
                raise SyntaxError(
                    f"%{name} has type {existing.type}, used as {type}")
            return existing
        forward = self.forwards.get(name)
        if forward is None:
            forward = _Forward(type, name)
            self.forwards[name] = forward
        elif forward.type is not type:
            raise SyntaxError(
                f"%{name} used with conflicting types "
                f"{forward.type} and {type}")
        return forward

    def get_block(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = BasicBlock(name)
            self.blocks[name] = block
        return block

    # -- body --------------------------------------------------------------------

    def parse_body(self) -> None:
        current: Optional[BasicBlock] = None
        while not self.tokens.at(PUNCT, "}"):
            if self.tokens.at_eof():
                raise SyntaxError("unexpected end of input inside function body")
            # A label: WORD/INT followed by ':'.
            if ((self.tokens.at(WORD) or self.tokens.at(INT))
                    and self.tokens.peek(1).kind == PUNCT
                    and self.tokens.peek(1).text == ":"):
                label = self.tokens.next().text
                self.tokens.expect(PUNCT, ":")
                block = self.get_block(label)
                if block.parent is not None:
                    raise SyntaxError(f"duplicate label {label}")
                self.function.append_block(block)
                current = block
                continue
            if current is None:
                current = self.get_block("entry")
                self.function.append_block(current)
            self.parse_instruction(current)
        if self.forwards:
            missing = ", ".join(f"%{n}" for n in sorted(self.forwards))
            raise SyntaxError(f"use of undefined value(s): {missing}")
        for name, block in self.blocks.items():
            if block.parent is None:
                raise SyntaxError(f"use of undefined label %{name}")

    # -- operands ------------------------------------------------------------------

    def parse_value(self, type: Type) -> Value:
        token = self.tokens.peek()
        if token.kind == LOCAL:
            self.tokens.next()
            return self.lookup_value(token.text, type)
        if token.kind == INT:
            self.tokens.next()
            if not isinstance(type, IntType):
                raise SyntaxError(f"integer literal used as {type}")
            return ConstantInt(type, int(token.text))
        if token.kind == GLOBAL:
            self.tokens.next()
            function = self.module.get_function(token.text)
            if function is None:
                raise SyntaxError(f"use of undefined global @{token.text}")
            return function
        if token.kind == WORD:
            if token.text == "true":
                self.tokens.next()
                return ConstantInt(IntType(1), 1)
            if token.text == "false":
                self.tokens.next()
                return ConstantInt(IntType(1), 0)
            if token.text == "undef":
                self.tokens.next()
                return UndefValue(type)
            if token.text == "poison":
                self.tokens.next()
                return PoisonValue(type)
            if token.text == "null":
                self.tokens.next()
                if not type.is_pointer():
                    raise SyntaxError("null literal used at non-pointer type")
                return ConstantPointerNull()
        raise SyntaxError(
            f"expected value, found {token.text!r} "
            f"at line {token.line}:{token.column}")

    def parse_typed_value(self) -> Value:
        type = self.parent.parse_type()
        if type.is_label():
            label = self.tokens.expect(LOCAL).text
            return self.get_block(label)
        return self.parse_value(type)

    def parse_label_operand(self) -> BasicBlock:
        self.tokens.expect(WORD, "label")
        return self.get_block(self.tokens.expect(LOCAL).text)

    def _skip_metadata(self) -> None:
        """Skip trailing ``, !dbg !7``-style metadata."""
        while self.tokens.at(PUNCT, ",") and self.tokens.peek(1).kind == METADATA:
            self.tokens.next()
            self.tokens.next()
            if self.tokens.at(METADATA):
                self.tokens.next()

    def _parse_align_suffix(self) -> int:
        align = 0
        if self.tokens.at(PUNCT, ",") and self.tokens.peek(1).kind == WORD \
                and self.tokens.peek(1).text == "align":
            self.tokens.next()
            self.tokens.next()
            align = int(self.tokens.expect(INT).text)
        return align

    # -- instructions ----------------------------------------------------------------

    def parse_instruction(self, block: BasicBlock) -> None:
        result_name = ""
        if self.tokens.at(LOCAL):
            result_name = self.tokens.next().text
            self.tokens.expect(PUNCT, "=")
        opcode_token = self.tokens.expect(WORD)
        opcode = opcode_token.text
        inst = self._dispatch(opcode, result_name)
        self._skip_metadata()
        inst.name = result_name if not inst.type.is_void() else ""
        block.append(inst)
        if result_name:
            if inst.type.is_void():
                raise SyntaxError(f"%{result_name} assigned from void instruction")
            self.define_value(result_name, inst)

    def _dispatch(self, opcode: str, result_name: str):
        if opcode in BINARY_OPCODES:
            return self._parse_binop(opcode)
        if opcode == "icmp":
            return self._parse_icmp()
        if opcode == "select":
            return self._parse_select()
        if opcode in CAST_OPCODES:
            return self._parse_cast(opcode)
        if opcode == "freeze":
            return FreezeInst(self.parse_typed_value())
        if opcode == "alloca":
            allocated = self.parent.parse_type()
            align = self._parse_align_suffix()
            return AllocaInst(allocated, align=align)
        if opcode == "load":
            return self._parse_load()
        if opcode == "store":
            return self._parse_store()
        if opcode == "getelementptr":
            return self._parse_gep()
        if opcode == "call":
            return self._parse_call()
        if opcode == "ret":
            return self._parse_ret()
        if opcode == "br":
            return self._parse_br()
        if opcode == "switch":
            return self._parse_switch()
        if opcode == "unreachable":
            return UnreachableInst()
        if opcode == "phi":
            return self._parse_phi()
        raise SyntaxError(f"unknown instruction opcode {opcode!r}")

    def _parse_binop(self, opcode: str) -> BinaryOperator:
        nuw = nsw = exact = False
        while self.tokens.at(WORD) and self.tokens.peek().text in ("nuw", "nsw", "exact"):
            flag = self.tokens.next().text
            nuw = nuw or flag == "nuw"
            nsw = nsw or flag == "nsw"
            exact = exact or flag == "exact"
        type = self.parent.parse_type()
        lhs = self.parse_value(type)
        self.tokens.expect(PUNCT, ",")
        rhs = self.parse_value(type)
        return BinaryOperator(opcode, lhs, rhs, nuw=nuw, nsw=nsw, exact=exact)

    def _parse_icmp(self) -> ICmpInst:
        predicate = self.tokens.expect(WORD).text
        if predicate not in ICMP_PREDICATES:
            raise SyntaxError(f"unknown icmp predicate {predicate!r}")
        type = self.parent.parse_type()
        lhs = self.parse_value(type)
        self.tokens.expect(PUNCT, ",")
        rhs = self.parse_value(type)
        return ICmpInst(predicate, lhs, rhs)

    def _parse_select(self) -> SelectInst:
        condition = self.parse_typed_value()
        self.tokens.expect(PUNCT, ",")
        true_value = self.parse_typed_value()
        self.tokens.expect(PUNCT, ",")
        false_value = self.parse_typed_value()
        if true_value.type is not false_value.type:
            raise SyntaxError("select arms have mismatched types")
        return SelectInst(condition, true_value, false_value)

    def _parse_cast(self, opcode: str) -> CastInst:
        value = self.parse_typed_value()
        self.tokens.expect(WORD, "to")
        dest = self.parent.parse_type()
        return CastInst(opcode, value, dest)

    def _parse_load(self) -> LoadInst:
        loaded_type = self.parent.parse_type()
        self.tokens.expect(PUNCT, ",")
        pointer = self.parse_typed_value()
        if not pointer.type.is_pointer():
            raise SyntaxError("load pointer operand is not a pointer")
        align = self._parse_align_suffix()
        return LoadInst(loaded_type, pointer, align=align)

    def _parse_store(self) -> StoreInst:
        value = self.parse_typed_value()
        self.tokens.expect(PUNCT, ",")
        pointer = self.parse_typed_value()
        if not pointer.type.is_pointer():
            raise SyntaxError("store pointer operand is not a pointer")
        align = self._parse_align_suffix()
        return StoreInst(value, pointer, align=align)

    def _parse_gep(self) -> GEPInst:
        inbounds = self.tokens.accept(WORD, "inbounds") is not None
        source_type = self.parent.parse_type()
        self.tokens.expect(PUNCT, ",")
        pointer = self.parse_typed_value()
        indices = []
        while self.tokens.accept(PUNCT, ","):
            if self.tokens.at(METADATA) or (self.tokens.at(WORD, "align")):
                raise SyntaxError("unexpected annotation in getelementptr")
            indices.append(self.parse_typed_value())
        if not indices:
            raise SyntaxError("getelementptr requires at least one index")
        return GEPInst(source_type, pointer, indices, inbounds=inbounds)

    def _parse_call(self) -> CallInst:
        return_type = self.parent.parse_type()
        callee_name = self.tokens.expect(GLOBAL).text
        args: List[Value] = []
        self.tokens.expect(PUNCT, "(")
        first = True
        while not self.tokens.at(PUNCT, ")"):
            if not first:
                self.tokens.expect(PUNCT, ",")
            first = False
            param_type = self.parent.parse_type()
            self.parent._parse_param_attrs(param_type)  # tolerated, dropped
            args.append(self.parse_value(param_type))
        self.tokens.expect(PUNCT, ")")
        callee = self.module.get_function(callee_name)
        if callee is None:
            # Implicitly declare, inferring the signature from the call site.
            function_type = FunctionType(return_type, tuple(a.type for a in args))
            callee = Function(function_type, callee_name, self.module)
        if callee.return_type is not return_type:
            raise SyntaxError(
                f"call return type {return_type} does not match "
                f"@{callee_name} which returns {callee.return_type}")
        bundles: List[OperandBundle] = []
        if self.tokens.accept(PUNCT, "["):
            while not self.tokens.at(PUNCT, "]"):
                if bundles:
                    self.tokens.expect(PUNCT, ",")
                tag = self.tokens.expect(STRING).text
                self.tokens.expect(PUNCT, "(")
                inputs = []
                inner_first = True
                while not self.tokens.at(PUNCT, ")"):
                    if not inner_first:
                        self.tokens.expect(PUNCT, ",")
                    inner_first = False
                    inputs.append(self.parse_typed_value())
                self.tokens.expect(PUNCT, ")")
                bundles.append(OperandBundle(tag, inputs))
            self.tokens.expect(PUNCT, "]")
        return CallInst(callee, args, bundles=bundles)

    def _parse_ret(self) -> RetInst:
        if self.tokens.accept(WORD, "void"):
            return RetInst()
        return RetInst(self.parse_typed_value())

    def _parse_br(self) -> BrInst:
        if self.tokens.at(WORD, "label"):
            return BrInst(self.parse_label_operand())
        condition = self.parse_typed_value()
        self.tokens.expect(PUNCT, ",")
        true_block = self.parse_label_operand()
        self.tokens.expect(PUNCT, ",")
        false_block = self.parse_label_operand()
        return BrInst(condition, true_block, false_block)

    def _parse_switch(self) -> SwitchInst:
        value = self.parse_typed_value()
        self.tokens.expect(PUNCT, ",")
        default = self.parse_label_operand()
        self.tokens.expect(PUNCT, "[")
        cases = []
        while not self.tokens.at(PUNCT, "]"):
            case_type = self.parent.parse_type()
            case_value = self.parse_value(case_type)
            if not isinstance(case_value, ConstantInt):
                raise SyntaxError("switch case values must be integer constants")
            self.tokens.expect(PUNCT, ",")
            cases.append((case_value, self.parse_label_operand()))
        self.tokens.expect(PUNCT, "]")
        return SwitchInst(value, default, cases)

    def _parse_phi(self) -> PhiNode:
        type = self.parent.parse_type()
        phi = PhiNode(type)
        first = True
        while True:
            if not first and not self.tokens.accept(PUNCT, ","):
                break
            first = False
            self.tokens.expect(PUNCT, "[")
            value = self.parse_value(type)
            self.tokens.expect(PUNCT, ",")
            label = self.tokens.expect(LOCAL).text
            self.tokens.expect(PUNCT, "]")
            phi.add_incoming(value, self.get_block(label))
        if phi.num_operands() == 0:
            raise SyntaxError("phi requires at least one incoming edge")
        return phi
