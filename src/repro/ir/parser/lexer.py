"""Tokenizer for the ``.ll``-style textual IR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class LexError(Exception):
    """Raised on malformed input characters."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}:{column}")
        self.line = line
        self.column = column


# Token kinds.
WORD = "word"          # keywords, opcodes, type names: define, i32, add, ...
LOCAL = "local"        # %name
GLOBAL = "global"      # @name
ATTR_GROUP = "attr_group"  # #0
INT = "int"            # integer literal (may be negative)
STRING = "string"      # "..." (operand bundle tags)
PUNCT = "punct"        # ( ) { } [ ] = , * : ...
METADATA = "metadata"  # !name or !0
EOF = "eof"

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ$._")
_IDENT_CONT = _IDENT_START | set("0123456789-")
_PUNCT_CHARS = set("(){}[]=,*:")


@dataclass
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize the whole input, dropping comments."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def make(kind: str, text: str) -> None:
        tokens.append(Token(kind, text, line, start_col))

    while i < n:
        ch = source[i]
        start_col = col
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == ";":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in "%@#!":
            sigil = ch
            j = i + 1
            if j < n and source[j] == '"':
                # Quoted name: %"spaced name"
                j += 1
                start = j
                while j < n and source[j] != '"':
                    j += 1
                if j >= n:
                    raise LexError("unterminated quoted name", line, start_col)
                name = source[start:j]
                j += 1
            else:
                start = j
                while j < n and source[j] in _IDENT_CONT:
                    j += 1
                name = source[start:j]
            if not name:
                raise LexError(f"empty name after {sigil!r}", line, start_col)
            kind = {"%": LOCAL, "@": GLOBAL, "#": ATTR_GROUP, "!": METADATA}[sigil]
            col += j - i
            i = j
            make(kind, name)
            continue
        if ch == '"':
            j = i + 1
            start = j
            while j < n and source[j] != '"':
                j += 1
            if j >= n:
                raise LexError("unterminated string", line, start_col)
            text = source[start:j]
            col += (j + 1) - i
            i = j + 1
            make(STRING, text)
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            col += j - i
            i = j
            make(INT, text)
            continue
        if ch in _IDENT_START:
            j = i
            while j < n and (source[j] in _IDENT_START or source[j].isdigit()):
                j += 1
            text = source[i:j]
            col += j - i
            i = j
            make(WORD, text)
            continue
        if ch == "." and source[i:i + 3] == "...":
            col += 3
            i += 3
            make(PUNCT, "...")
            continue
        if ch in _PUNCT_CHARS:
            i += 1
            col += 1
            make(PUNCT, ch)
            continue
        raise LexError(f"unexpected character {ch!r}", line, start_col)

    tokens.append(Token(EOF, "", line, col))
    return tokens


class TokenStream:
    """Cursor over a token list with peek/expect helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != EOF:
            self._pos += 1
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            wanted = text if text is not None else kind
            raise SyntaxError(
                f"expected {wanted!r}, found {token.text!r} "
                f"at line {token.line}:{token.column}")
        return self.next()

    def at_eof(self) -> bool:
        return self.peek().kind == EOF
