"""Textual IR parsing."""

from .lexer import LexError, Token, TokenStream, tokenize
from .parser import ParseError, parse_function, parse_module

__all__ = ["LexError", "Token", "TokenStream", "tokenize",
           "ParseError", "parse_function", "parse_module"]
