"""Function and parameter attributes.

Attributes are assertions to the optimizer ("this parameter is never
captured", "this function frees no memory").  They are a fruitful source of
compiler bugs (paper §IV-A), so the mutation engine toggles them, and the
translation-validation interpreter enforces a subset of their semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set


# Attributes with no argument that may appear on a function.
FUNCTION_ATTRIBUTES: FrozenSet[str] = frozenset({
    "nofree",
    "nosync",
    "nounwind",
    "willreturn",
    "mustprogress",
    "norecurse",
    "readnone",
    "readonly",
    "writeonly",
    "argmemonly",
    "speculatable",
    "alwaysinline",
    "noinline",
    "cold",
    "hot",
})

# Attributes with no argument that may appear on a parameter.
PARAM_FLAG_ATTRIBUTES: FrozenSet[str] = frozenset({
    "nocapture",
    "noundef",
    "nonnull",
    "readnone",
    "readonly",
    "writeonly",
    "noalias",
    "nofree",
    "returned",
    "zeroext",
    "signext",
})

# Parameter attributes that carry an integer argument, e.g.
# ``dereferenceable(8)`` or ``align 4``.
PARAM_INT_ATTRIBUTES: FrozenSet[str] = frozenset({
    "dereferenceable",
    "dereferenceable_or_null",
    "align",
})

# Attributes that only make sense on pointer-typed parameters.
POINTER_ONLY_PARAM_ATTRIBUTES: FrozenSet[str] = frozenset({
    "nocapture",
    "nonnull",
    "noalias",
    "nofree",
    "readnone",
    "readonly",
    "writeonly",
    "dereferenceable",
    "dereferenceable_or_null",
    "align",
})


@dataclass(frozen=True)
class Attribute:
    """A single attribute, optionally carrying an integer payload.

    ``Attribute("nofree")`` or ``Attribute("dereferenceable", 8)``.
    """

    name: str
    value: Optional[int] = None

    def __str__(self) -> str:
        if self.value is None:
            return self.name
        if self.name == "align":
            return f"align {self.value}"
        return f"{self.name}({self.value})"


class AttributeSet:
    """A mutable set of attributes keyed by attribute name.

    At most one attribute per name is kept, mirroring LLVM's AttributeSet.
    """

    def __init__(self, attrs: Iterable[Attribute] = ()) -> None:
        self._attrs: Dict[str, Attribute] = {}
        for attr in attrs:
            self.add(attr)

    def add(self, attr: Attribute) -> None:
        self._attrs[attr.name] = attr

    def remove(self, name: str) -> None:
        self._attrs.pop(name, None)

    def has(self, name: str) -> bool:
        return name in self._attrs

    def get(self, name: str) -> Optional[Attribute]:
        return self._attrs.get(name)

    def get_int(self, name: str) -> Optional[int]:
        attr = self._attrs.get(name)
        return attr.value if attr is not None else None

    def toggle(self, attr: Attribute) -> None:
        """Add the attribute if absent, drop it if present (mutation helper)."""
        if self.has(attr.name):
            self.remove(attr.name)
        else:
            self.add(attr)

    def names(self) -> Set[str]:
        return set(self._attrs)

    def copy(self) -> "AttributeSet":
        return AttributeSet(self._attrs.values())

    def __iter__(self):
        return iter(sorted(self._attrs.values(), key=lambda a: a.name))

    def __len__(self) -> int:
        return len(self._attrs)

    def __bool__(self) -> bool:
        return bool(self._attrs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeSet):
            return NotImplemented
        return self._attrs == other._attrs

    def __str__(self) -> str:
        return " ".join(str(a) for a in self)

    def __repr__(self) -> str:
        return f"AttributeSet([{', '.join(repr(a) for a in self)}])"
