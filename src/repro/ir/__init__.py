"""LLVM-like intermediate representation.

Public surface re-exported here: types, values, instructions, module
structure, builder, parser, printer, and verifier.
"""

from .attributes import (Attribute, AttributeSet, FUNCTION_ATTRIBUTES,
                         PARAM_FLAG_ATTRIBUTES, PARAM_INT_ATTRIBUTES,
                         POINTER_ONLY_PARAM_ATTRIBUTES)
from .basicblock import BasicBlock
from .builder import IRBuilder
from .fingerprint import (called_definitions, fingerprint_closure,
                          fingerprint_function, references_definitions)
from .function import Function
from .instructions import (AllocaInst, BINARY_OPCODES, BinaryOperator,
                           BITWIDTH_POLYMORPHIC_OPCODES, BrInst, CallInst,
                           CastInst, CAST_OPCODES, COMMUTATIVE_OPCODES,
                           EXACT_FLAG_OPCODES, FreezeInst, GEPInst,
                           ICMP_PREDICATES, ICmpInst, Instruction, LoadInst,
                           OperandBundle, PhiNode, RetInst, SelectInst,
                           StoreInst, SwitchInst, UnreachableInst,
                           WRAPPING_FLAG_OPCODES)
from .module import Module, clone_functions_into
from .printer import print_function, print_instruction, print_module
from .types import (FunctionType, I1, I8, I16, I32, I64, I128, IntType,
                    LabelType, MAX_INT_BITS, PTR, PtrType, Type, VOID,
                    VoidType, int_type)
from .values import (Argument, Constant, ConstantInt, ConstantPointerNull,
                     PoisonValue, UndefValue, Use, User, Value)
from .verifier import (VerificationError, collect_function_errors,
                       is_valid_module, verify_function, verify_module)
from .parser import ParseError, parse_function, parse_module

__all__ = [
    "Attribute", "AttributeSet", "FUNCTION_ATTRIBUTES",
    "PARAM_FLAG_ATTRIBUTES", "PARAM_INT_ATTRIBUTES",
    "POINTER_ONLY_PARAM_ATTRIBUTES",
    "BasicBlock", "IRBuilder", "Function",
    "called_definitions", "fingerprint_closure", "fingerprint_function",
    "references_definitions",
    "AllocaInst", "BINARY_OPCODES", "BinaryOperator",
    "BITWIDTH_POLYMORPHIC_OPCODES", "BrInst", "CallInst", "CastInst",
    "CAST_OPCODES", "COMMUTATIVE_OPCODES", "EXACT_FLAG_OPCODES",
    "FreezeInst", "GEPInst", "ICMP_PREDICATES", "ICmpInst", "Instruction",
    "LoadInst", "OperandBundle", "PhiNode", "RetInst", "SelectInst",
    "StoreInst", "SwitchInst", "UnreachableInst", "WRAPPING_FLAG_OPCODES",
    "Module", "clone_functions_into",
    "print_function", "print_instruction", "print_module",
    "FunctionType", "I1", "I8", "I16", "I32", "I64", "I128", "IntType",
    "LabelType", "MAX_INT_BITS", "PTR", "PtrType", "Type", "VOID",
    "VoidType", "int_type",
    "Argument", "Constant", "ConstantInt", "ConstantPointerNull",
    "PoisonValue", "UndefValue", "Use", "User", "Value",
    "VerificationError", "collect_function_errors", "is_valid_module",
    "verify_function", "verify_module",
    "ParseError", "parse_function", "parse_module",
]
