"""Canonical structural fingerprints for functions (memoization keys).

The fuzzing loop re-optimizes and re-verifies many structurally identical
functions: untouched non-target definitions, failed mutation rounds, and
attribute/shuffle mutants that regenerate a shape already seen.  A
:func:`fingerprint_function` hash lets the driver recognise those repeats
and replay cached results instead (the paper's §III-B cache hierarchy,
lifted from analyses to whole optimize/verify outcomes).

The hash is *names-normalized* and *operand-position-based*: arguments,
blocks and instructions are numbered in program order (``A0``, ``B0``,
``V0``, ...), operands are encoded by those numbers, and self-references
(recursion) as ``self`` — so two alpha-equivalent functions — same
shape, different value/function names — collide on purpose.  Everything semantically relevant is folded in:
signature and vararg-ness, function/argument/call-site attribute sets,
opcodes and result types, poison flags (``nuw``/``nsw``/``exact``/
``inbounds``), icmp predicates, alignments, alloca/gep pointee types,
callee names and operand-bundle shapes, and every constant's type and
canonical value.  Cross-function references are encoded *by name*
(``fn:<name>``), matching how modules link calls, so a fingerprint is
only meaningful together with the fingerprints of the callees it names —
that is what :func:`fingerprint_closure` provides for verify-level keys.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from .basicblock import BasicBlock
from .function import Function
from .instructions import (AllocaInst, CallInst, GEPInst, ICmpInst, LoadInst,
                           StoreInst)
from .values import (Argument, ConstantInt, ConstantPointerNull, PoisonValue,
                     UndefValue, Value)

__all__ = [
    "called_definitions",
    "fingerprint_closure",
    "fingerprint_function",
    "references_definitions",
]


def _encode_operand(value: Value, ids: Dict[int, str]) -> str:
    """Position-based (or structural, for constants) operand encoding."""
    label = ids.get(id(value))
    if label is not None:
        return label
    if isinstance(value, ConstantInt):
        return f"ci{value.type.width}:{value.value}"
    if isinstance(value, UndefValue):
        return f"undef:{value.type}"
    if isinstance(value, PoisonValue):
        return f"poison:{value.type}"
    if isinstance(value, ConstantPointerNull):
        return "null"
    if isinstance(value, Function):
        return f"fn:{value.name}"
    # Foreign values (another function's argument/block/instruction) can
    # only appear in malformed IR; fall back to something stable enough.
    kind = type(value).__name__
    return f"?{kind}:{value.type}:{value.name}"


def _instruction_payload(inst) -> str:
    """The per-opcode extras that operands and flags do not capture."""
    if isinstance(inst, ICmpInst):
        return inst.predicate
    if isinstance(inst, AllocaInst):
        return f"{inst.allocated_type}@{inst.align}"
    if isinstance(inst, (LoadInst, StoreInst)):
        return f"@{inst.align}"
    if isinstance(inst, GEPInst):
        return str(inst.source_type)
    if isinstance(inst, CallInst):
        bundles = ",".join(
            f"{bundle.tag}:{len(bundle.inputs)}" for bundle in inst.bundles)
        return (f"nargs={len(inst.args)};bundles={bundles};"
                f"attrs={inst.attributes}")
    return ""


def _canonical_tokens(function: Function) -> List[str]:
    """The token stream the fingerprint hashes, exposed for tests.

    This sits on the driver's hot path (every mutant function is hashed
    at least twice per iteration), so the inner loop caches the two
    encodings that repeat heavily — type strings (type objects are
    interned per width) and constant operands (shared pool objects) —
    and inlines the common positional-operand lookup.
    """
    ids: Dict[int, str] = {id(function): "self"}
    for index, argument in enumerate(function.arguments):
        ids[id(argument)] = f"A{index}"
    next_value = 0
    for index, block in enumerate(function.blocks):
        ids[id(block)] = f"B{index}"
        for inst in block.instructions:
            ids[id(inst)] = f"V{next_value}"
            next_value += 1

    signature = function.function_type
    params = ",".join(str(t) for t in signature.param_types)
    vararg = "..." if signature.is_vararg else ""
    tokens = [f"sig:{signature.return_type}({params}{vararg})",
              f"fattrs:{function.attributes}"]
    for index, argument in enumerate(function.arguments):
        attrs = str(argument.attributes)
        if attrs:
            tokens.append(f"aattrs{index}:{attrs}")

    type_strs: Dict[int, str] = {}
    operand_strs: Dict[int, str] = {}
    ids_get = ids.get
    append = tokens.append
    for block in function.blocks:
        append(f"block:{ids[id(block)]}")
        for inst in block.instructions:
            # Operands are encoded positionally; the CallInst callee is a
            # separate attribute, not an operand, so encode it explicitly.
            parts = []
            for operand in inst.operands:
                key = id(operand)
                label = ids_get(key)
                if label is None:
                    label = operand_strs.get(key)
                    if label is None:
                        label = _encode_operand(operand, ids)
                        operand_strs[key] = label
                parts.append(label)
            payload = _instruction_payload(inst)
            if isinstance(inst, CallInst):
                payload = f"{_encode_operand(inst.callee, ids)};{payload}"
            type_key = id(inst.type)
            type_str = type_strs.get(type_key)
            if type_str is None:
                type_str = type_strs[type_key] = str(inst.type)
            append(f"{ids[id(inst)]}={inst.opcode}:{type_str}:"
                   f"{inst.flags_repr()}:{payload}({','.join(parts)})")
    return tokens


def fingerprint_function(function: Function,
                         fp_cache: Optional[Dict[int, str]] = None) -> str:
    """Hex digest of the canonical structural hash of one function.

    ``fp_cache`` (keyed by ``id(function)``) amortizes repeated lookups
    within one driver iteration; callers must only share a cache across
    functions that are not mutated between calls.
    """
    if fp_cache is not None:
        cached = fp_cache.get(id(function))
        if cached is not None:
            return cached
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update("\n".join(_canonical_tokens(function)).encode("utf-8"))
    digest = hasher.hexdigest()
    if fp_cache is not None:
        fp_cache[id(function)] = digest
    return digest


def _referenced_functions(function: Function) -> List[Function]:
    """Every Function object referenced from ``function``'s body."""
    seen: Dict[int, Function] = {}
    for inst in function.instructions():
        candidates = list(inst.operands)
        if isinstance(inst, CallInst):
            candidates.append(inst.callee)
        for value in candidates:
            if isinstance(value, Function) and id(value) not in seen:
                seen[id(value)] = value
    return list(seen.values())


def called_definitions(function: Function) -> List[Function]:
    """Defined (non-declaration) functions referenced by ``function``."""
    return [fn for fn in _referenced_functions(function)
            if not fn.is_declaration()]


def references_definitions(function: Function) -> bool:
    """Does the body reference any defined function other than itself?

    Bodies that only reference declarations (or recurse into themselves)
    can be spliced into another module by remapping names; bodies that
    call other *definitions* cannot, because the cached body would keep
    executing the stale callee object.
    """
    return any(fn is not function for fn in called_definitions(function))


def fingerprint_closure(function: Function,
                        fp_cache: Optional[Dict[int, str]] = None) -> str:
    """Fingerprint of ``function`` plus every defined function it can reach.

    Verify verdicts depend on the bodies of transitively-called defined
    functions (the interpreter executes callee objects directly), so
    verify-cache keys must cover the whole call closure.  The common case
    — no calls into other definitions — degenerates to the plain
    function fingerprint with no extra hashing.
    """
    root = fingerprint_function(function, fp_cache)
    reachable: Dict[str, str] = {}
    stack = [function]
    visited = {id(function)}
    while stack:
        current = stack.pop()
        for callee in called_definitions(current):
            if id(callee) in visited:
                continue
            visited.add(id(callee))
            reachable[callee.name] = fingerprint_function(callee, fp_cache)
            stack.append(callee)
    if not reachable:
        return root
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(root.encode("utf-8"))
    for name in sorted(reachable):
        hasher.update(f"|{name}={reachable[name]}".encode("utf-8"))
    return hasher.hexdigest()
