#!/bin/sh
# Appendix E.1: run alive-mutate over every IR file in tests/, saving all
# mutants to tmp/ (mutants for test.ll are named test_<seed>.ll).
# The files are fuzzed in parallel; set JOBS to change the worker count
# (JOBS=1 falls back to one sequential in-process run per file).
# Extra arguments are passed through to alive-mutate, e.g.:
#     ./run.sh --passes instcombine -n 50
set -eu
JOBS="${JOBS:-4}"
cd "$(dirname "$0")"
mkdir -p tmp

if [ -z "$(ls tests/*.ll 2>/dev/null || true)" ]; then
    echo "tests/ is empty; generating a starter corpus..."
    python3 -c "
from repro.fuzz import generate_corpus
for name, text in generate_corpus(10, seed=0):
    open('tests/' + name, 'w').write(text)
print('wrote 10 files to tests/')
"
fi

# Fall back to module invocation when the console script is not on PATH.
if command -v alive-mutate >/dev/null 2>&1; then
    ALIVE_MUTATE="alive-mutate"
else
    ALIVE_MUTATE="python3 -m repro.cli.alive_mutate"
fi

$ALIVE_MUTATE tests/*.ll --jobs "$JOBS" -n 10 --saveAll --save-dir tmp "$@" \
    || true
echo "mutants written to $(pwd)/tmp"
