#!/usr/bin/env python3
"""Appendix E.2: the throughput experiment over artifact/throughput/tests/.

Runs both workflows (integrated alive-mutate vs. discrete tools) on every
IR file in tests/ and writes res.txt in the paper's Listing-20 format.

Usage:  python bench.py [COUNT]

COUNT is the number of mutants per file per workflow (the paper's global
COUNT variable, set to 1000 in the paper's runs; the default here is 40
so a first run finishes quickly).
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
TESTS = os.path.join(HERE, "tests")
RESULT = os.path.join(HERE, "res.txt")

COUNT = int(sys.argv[1]) if len(sys.argv) > 1 else 40


def ensure_corpus():
    os.makedirs(TESTS, exist_ok=True)
    existing = [f for f in os.listdir(TESTS) if f.endswith(".ll")]
    if existing:
        return
    from repro.fuzz import generate_corpus

    print("tests/ is empty; generating a starter corpus...")
    for name, text in generate_corpus(8, seed=42):
        with open(os.path.join(TESTS, name), "w") as stream:
            stream.write(text)


def main():
    ensure_corpus()
    from repro.fuzz import ThroughputConfig, run_throughput_experiment

    corpus = []
    for file_name in sorted(os.listdir(TESTS)):
        if not file_name.endswith(".ll"):
            continue
        with open(os.path.join(TESTS, file_name)) as stream:
            corpus.append((file_name, stream.read()))

    print(f"measuring {len(corpus)} files x {COUNT} mutants per workflow...")
    report = run_throughput_experiment(
        corpus, ThroughputConfig(count=COUNT, max_inputs=8))
    text = report.render_res_txt()
    with open(RESULT, "w") as stream:
        stream.write(text)
    print(text)
    print(f"results written to {RESULT}")


if __name__ == "__main__":
    main()
